//! Fidelity selection and the [`ComputeBackend`] implementation for the
//! DPTC core.
//!
//! The seed's "method zoo" (`matmul_ideal` / `matmul_noisy` /
//! `matmul_circuit`, each a separate code path) collapses into one
//! polymorphic API: pick a [`Fidelity`], hand it to [`Dptc::matmul`] /
//! [`Dptc::gemm`], or wrap the core in a [`DptcBackend`] and use it
//! anywhere a [`ComputeBackend`] is accepted — the NN engines, the
//! baseline comparisons, the experiment harness.

use crate::ddot::WavelengthCoefficients;
use crate::dptc::{Dptc, DptcConfig};
use crate::noise_model::NoiseModel;
use lt_core::{blocked_gemm, ComputeBackend, Matrix64, MatrixView, RunCtx};
use std::sync::Arc;

/// Simulation fidelity of a DPTC matrix product.
///
/// Fidelity is a *value*, not a method: the same [`Dptc::gemm`] call
/// serves exact, analytic-noisy, and circuit-level simulation.
///
/// ```
/// use lt_core::Matrix64;
/// use lt_dptc::{Dptc, DptcConfig, Fidelity, NoiseModel};
///
/// let core = Dptc::new(DptcConfig::lt_paper());
/// let a = Matrix64::from_fn(20, 14, |i, j| ((i + j) as f64 * 0.1).sin());
/// let b = Matrix64::from_fn(14, 9, |i, j| ((i * j) as f64 * 0.1).cos());
///
/// let exact = core.gemm(a.view(), b.view(), 8, &Fidelity::Ideal);
/// assert_eq!(exact, a.matmul(&b), "Ideal is the exact contract");
///
/// let noisy = core.gemm(a.view(), b.view(), 8, &Fidelity::paper_noisy(42));
/// let rel = noisy.max_abs_diff(&exact) / exact.max_abs();
/// assert!(rel > 0.0 && rel < 0.5, "analog error is small but nonzero");
///
/// assert_eq!(Fidelity::paper_noisy(42).name(), "analytic-noisy");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fidelity {
    /// Exact arithmetic — the functional contract of the hardware. No
    /// tiling, quantization, or noise; bit-for-bit identical to
    /// [`lt_core::NativeBackend`].
    Ideal,
    /// The paper's analytic Eq. 9 transfer: encoding magnitude/phase
    /// noise, per-wavelength dispersion, and systematic output noise.
    /// This is the model used for all accuracy experiments.
    AnalyticNoisy {
        /// The injected non-idealities.
        noise: NoiseModel,
        /// Root seed of the noise stream.
        seed: u64,
    },
    /// Field propagation through the actual device netlist
    /// ([`crate::DdotCircuit`]) — our substitute for the paper's
    /// Lumerical INTERCONNECT validation. Roughly an order of magnitude
    /// slower than the analytic model.
    Circuit {
        /// The injected non-idealities.
        noise: NoiseModel,
        /// Root seed of the noise stream.
        seed: u64,
    },
}

impl Fidelity {
    /// The analytic model at the paper's operating point.
    pub fn paper_noisy(seed: u64) -> Self {
        Fidelity::AnalyticNoisy {
            noise: NoiseModel::paper_default(),
            seed,
        }
    }

    /// The analytic model with all stochastic terms disabled — the
    /// quantized-but-noiseless digital reference of the accuracy
    /// experiments (tiling and DAC quantization still apply in
    /// [`Dptc::gemm`]).
    pub fn quantized_reference() -> Self {
        Fidelity::AnalyticNoisy {
            noise: NoiseModel::noiseless(),
            seed: 0,
        }
    }

    /// A short human-readable fidelity name.
    pub fn name(&self) -> &'static str {
        match self {
            Fidelity::Ideal => "ideal",
            Fidelity::AnalyticNoisy { .. } => "analytic-noisy",
            Fidelity::Circuit { .. } => "circuit",
        }
    }

    /// Returns a copy whose noise stream is re-rooted by mixing `salt`
    /// into the seed (used by [`DptcBackend`] to give every backend call
    /// a fresh, reproducible realization).
    pub fn resalted(&self, salt: u64) -> Self {
        match *self {
            Fidelity::Ideal => Fidelity::Ideal,
            Fidelity::AnalyticNoisy { noise, seed } => Fidelity::AnalyticNoisy {
                noise,
                seed: seed ^ salt,
            },
            Fidelity::Circuit { noise, seed } => Fidelity::Circuit {
                noise,
                seed: seed ^ salt,
            },
        }
    }
}

/// The DPTC core as a pluggable [`ComputeBackend`].
///
/// Every call tiles the product through the crossbar at the configured
/// fidelity and bit-width; stochastic fidelities draw a fresh noise
/// realization per call from the [`RunCtx`] seed stream (so a run is
/// reproducible from its root seed, but no two GEMMs share a
/// realization).
///
/// ```
/// use lt_core::{ComputeBackend, Matrix64, NativeBackend, RunCtx};
/// use lt_dptc::{DptcBackend, DptcConfig};
///
/// let a = Matrix64::from_fn(20, 30, |i, j| ((i + j) as f64 * 0.07).sin());
/// let b = Matrix64::from_fn(30, 10, |i, j| ((i * j) as f64 * 0.05).cos());
/// let mut ctx = RunCtx::new(7);
///
/// let exact = NativeBackend.gemm(a.view(), b.view(), &mut ctx);
/// let photonic = DptcBackend::paper(8, 42).gemm(a.view(), b.view(), &mut ctx);
/// // The photonic result tracks the exact one to within analog error.
/// assert!(photonic.max_abs_diff(&exact) < 0.5 * exact.max_abs().max(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct DptcBackend {
    core: Dptc,
    fidelity: Fidelity,
    bits: u32,
    /// Wavelength transfer coefficients for the analytic fidelity,
    /// precomputed once per backend: they depend only on the DWDM grid
    /// and the noise model's dispersion — both fixed at construction —
    /// yet used to be recomputed inside every GEMM call on the decode
    /// hot path. `None` for non-analytic fidelities.
    coeffs: Option<Arc<WavelengthCoefficients>>,
}

impl DptcBackend {
    /// Wraps a core geometry with an explicit fidelity and DAC bit-width.
    pub fn new(config: DptcConfig, fidelity: Fidelity, bits: u32) -> Self {
        let core = Dptc::new(config);
        let coeffs = Self::coeffs_for(&core, &fidelity);
        DptcBackend {
            core,
            fidelity,
            bits,
            coeffs,
        }
    }

    fn coeffs_for(core: &Dptc, fidelity: &Fidelity) -> Option<Arc<WavelengthCoefficients>> {
        match fidelity {
            Fidelity::AnalyticNoisy { noise, .. } => Some(Arc::new(
                WavelengthCoefficients::compute(core.ddot().grid(), &noise.dispersion),
            )),
            _ => None,
        }
    }

    /// The ideal backend: paper-geometry core, exact arithmetic. Matches
    /// the workspace's shared kernel bit-for-bit.
    pub fn ideal(config: DptcConfig) -> Self {
        DptcBackend::new(config, Fidelity::Ideal, 16)
    }

    /// The paper's noisy operating point on a 12x12x12 core.
    pub fn paper(bits: u32, seed: u64) -> Self {
        DptcBackend::new(DptcConfig::lt_paper(), Fidelity::paper_noisy(seed), bits)
    }

    /// The quantized-but-noiseless digital reference on the paper core.
    pub fn quantized(bits: u32) -> Self {
        DptcBackend::new(
            DptcConfig::lt_paper(),
            Fidelity::quantized_reference(),
            bits,
        )
    }

    /// The wrapped core.
    pub fn core(&self) -> &Dptc {
        &self.core
    }

    /// The configured fidelity.
    pub fn fidelity(&self) -> &Fidelity {
        &self.fidelity
    }

    /// The DAC/ADC bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Returns a copy with a different noise model. Stochastic
    /// fidelities keep their kind and seed; an `Ideal` backend becomes
    /// `AnalyticNoisy` (attaching a noise model to an exact backend
    /// asks for the noisy analytic simulation — note this also enables
    /// tiling and DAC quantization in `gemm`, so results are no longer
    /// bit-for-bit the exact kernel even with a noiseless model).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.fidelity = match self.fidelity {
            Fidelity::Ideal => Fidelity::AnalyticNoisy { noise, seed: 0 },
            Fidelity::AnalyticNoisy { seed, .. } => Fidelity::AnalyticNoisy { noise, seed },
            Fidelity::Circuit { seed, .. } => Fidelity::Circuit { noise, seed },
        };
        self.coeffs = Self::coeffs_for(&self.core, &self.fidelity);
        self
    }
}

impl ComputeBackend for DptcBackend {
    fn name(&self) -> &str {
        match self.fidelity {
            Fidelity::Ideal => "dptc-ideal",
            Fidelity::AnalyticNoisy { .. } => "dptc-analytic",
            Fidelity::Circuit { .. } => "dptc-circuit",
        }
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, ctx: &mut RunCtx) -> Matrix64 {
        // The plain GEMM *is* the canonical blocked execution: one
        // call-level seed, one noise stream per `Nh`-row strip (see
        // `gemm_block`). That makes `lt-runtime`'s `ParallelBackend`
        // bit-identical to this backend at every thread count and
        // fidelity — thread scheduling cannot reorder noise draws,
        // because no two strips share a stream.
        blocked_gemm(self, a, b, ctx)
    }

    fn preferred_block_rows(&self) -> usize {
        // Blocks stay a whole number of `Nh`-row hardware strips, but
        // span several of them: every `gemm_block` call re-gathers,
        // re-quantizes, and re-encodes the full right operand's tiles,
        // so wider blocks amortize that DAC work across more output
        // rows (the tiled loop reuses B tiles for every strip in the
        // block).
        self.core.config().nh * 4
    }

    fn gemm_block(
        &self,
        a_rows: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        block_seed: u64,
    ) -> Matrix64 {
        // The analytic hot path reuses the backend's precomputed
        // wavelength coefficients instead of re-deriving them per call.
        if let Fidelity::AnalyticNoisy { noise, seed } = self.fidelity {
            let coeffs = self.coeffs.as_ref().expect("analytic backend has coeffs");
            return self.core.gemm_tiled_analytic(
                a_rows,
                b,
                self.bits,
                &noise,
                seed ^ block_seed,
                coeffs,
            );
        }
        let fidelity = self.fidelity.resalted(block_seed);
        self.core.gemm(a_rows, b, self.bits, &fidelity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_core::{GaussianSampler, NativeBackend};

    fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix64, Matrix64) {
        let mut rng = GaussianSampler::new(seed);
        (
            Matrix64::from_fn(m, k, |_, _| rng.uniform_in(-1.0, 1.0)),
            Matrix64::from_fn(k, n, |_, _| rng.uniform_in(-1.0, 1.0)),
        )
    }

    #[test]
    fn ideal_backend_matches_native_bit_for_bit() {
        let (a, b) = rand_pair(18, 25, 14, 1);
        let mut ctx = RunCtx::new(0);
        let ideal = DptcBackend::ideal(DptcConfig::lt_paper()).gemm(a.view(), b.view(), &mut ctx);
        let native = NativeBackend.gemm(a.view(), b.view(), &mut ctx);
        assert_eq!(ideal, native);
    }

    #[test]
    fn noisy_backend_draws_fresh_realizations_per_call() {
        let (a, b) = rand_pair(12, 12, 12, 2);
        let backend = DptcBackend::paper(8, 5);
        let mut ctx = RunCtx::new(3);
        let first = backend.gemm(a.view(), b.view(), &mut ctx);
        let second = backend.gemm(a.view(), b.view(), &mut ctx);
        assert!(first.max_abs_diff(&second) > 0.0, "fresh noise per call");
    }

    #[test]
    fn noisy_backend_runs_are_reproducible() {
        let (a, b) = rand_pair(12, 24, 12, 3);
        let backend = DptcBackend::paper(8, 5);
        let r1 = backend.gemm(a.view(), b.view(), &mut RunCtx::new(3));
        let r2 = backend.gemm(a.view(), b.view(), &mut RunCtx::new(3));
        assert_eq!(r1, r2);
    }

    #[test]
    fn quantized_backend_is_deterministic_and_close() {
        let (a, b) = rand_pair(10, 20, 10, 4);
        let backend = DptcBackend::quantized(8);
        let mut ctx = RunCtx::new(0);
        let q1 = backend.gemm(a.view(), b.view(), &mut ctx);
        let q2 = backend.gemm(a.view(), b.view(), &mut ctx);
        assert_eq!(q1, q2, "noiseless path ignores the seed stream");
        let exact = a.matmul(&b);
        assert!(q1.max_abs_diff(&exact) < 0.1 * exact.max_abs().max(1.0));
    }

    #[test]
    fn strip_noise_streams_are_independent() {
        // Each Nh-row strip owns a seed-partitioned noise stream, so
        // perturbing one strip's operand rows cannot change another
        // strip's output — the property that makes parallel row-block
        // execution bit-identical to sequential.
        let backend = DptcBackend::paper(8, 5);
        let (a, b) = rand_pair(24, 12, 12, 9);
        let r1 = backend.gemm(a.view(), b.view(), &mut RunCtx::new(1));
        let mut a2 = a.clone();
        for i in 12..24 {
            for j in 0..12 {
                a2.set(i, j, -a2.get(i, j));
            }
        }
        let r2 = backend.gemm(a2.view(), b.view(), &mut RunCtx::new(1));
        for i in 0..12 {
            assert_eq!(r1.row(i), r2.row(i), "strip 0 must not see strip 1");
        }
        assert!(
            (12..24).any(|i| r1.row(i) != r2.row(i)),
            "strip 1 did change"
        );
    }

    #[test]
    fn gemm_is_the_canonical_blocked_execution() {
        let (a, b) = rand_pair(30, 20, 15, 6);
        for backend in [
            DptcBackend::ideal(DptcConfig::lt_paper()),
            DptcBackend::quantized(8),
            DptcBackend::paper(8, 3),
        ] {
            let plain = backend.gemm(a.view(), b.view(), &mut RunCtx::new(11));
            let blocked = blocked_gemm(&backend, a.view(), b.view(), &mut RunCtx::new(11));
            assert_eq!(plain, blocked, "{}", ComputeBackend::name(&backend));
        }
    }

    #[test]
    fn fidelity_helpers() {
        assert_eq!(Fidelity::Ideal.name(), "ideal");
        assert_eq!(Fidelity::quantized_reference().name(), "analytic-noisy");
        assert_eq!(
            Fidelity::paper_noisy(7).resalted(0),
            Fidelity::paper_noisy(7)
        );
        assert_eq!(Fidelity::Ideal.resalted(99), Fidelity::Ideal);
    }

    #[test]
    fn backend_with_noise_overrides_model() {
        let quiet = NoiseModel::noiseless();
        let backend = DptcBackend::paper(8, 1).with_noise(quiet);
        match backend.fidelity() {
            Fidelity::AnalyticNoisy { noise, .. } => assert!(noise.is_deterministic()),
            other => panic!("unexpected fidelity {other:?}"),
        }
    }
}
