//! Numeric [`ComputeBackend`] implementations of the baseline photonic
//! accelerators.
//!
//! The energy/latency models elsewhere in this crate answer "what does a
//! GEMM *cost* on an MZI mesh / MRR bank / PCM crossbar?". These backends
//! answer the complementary question: "what *value* does it compute?" —
//! each one reproduces the numeric fidelity artifacts of its hardware
//! class (SVD weight mapping, non-negative operand decomposition,
//! discrete conductance levels, low-rank truncation) behind the same
//! [`ComputeBackend`] trait the DPTC uses. Baseline-vs-DPTC accuracy
//! comparisons are therefore a backend swap, not a parallel code path:
//!
//! ```
//! use lt_core::{ComputeBackend, Matrix64, RunCtx};
//! use lt_baselines::backend::{MrrBackend, MziBackend, PcmBackend};
//!
//! let a = Matrix64::from_fn(8, 12, |i, j| ((i + 2 * j) as f64 * 0.1).sin());
//! let b = Matrix64::from_fn(12, 8, |i, j| ((i * j) as f64 * 0.07).cos());
//! let exact = a.matmul(&b);
//! let mut ctx = RunCtx::new(1);
//! let backends: Vec<Box<dyn ComputeBackend>> = vec![
//!     Box::new(MziBackend::paper(8)),
//!     Box::new(MrrBackend::paper(8)),
//!     Box::new(PcmBackend::paper(8)),
//! ];
//! for be in &backends {
//!     let got = be.gemm(a.view(), b.view(), &mut ctx);
//!     let rel = got.max_abs_diff(&exact) / exact.max_abs().max(1e-9);
//!     assert!(rel < 0.2, "{} deviates by {rel}", be.name());
//! }
//! ```

use crate::svd::{jacobi_svd, reconstruct, Svd};
use lt_core::{ComputeBackend, GaussianSampler, Matrix64, MatrixView, Quantizer, RunCtx};

/// Quantizes every element of `m` symmetrically against its own max-abs
/// scale (per-tensor), returning the dequantized matrix.
fn fake_quantize(m: &Matrix64, bits: u32) -> Matrix64 {
    let q = Quantizer::new(bits);
    let scale = m.max_abs();
    if scale == 0.0 {
        return m.clone();
    }
    m.map(|v| q.fake_quantize(v, scale))
}

/// SVD of an arbitrary `r x c` matrix: transposes first when `r < c`
/// (one-sided Jacobi needs tall-or-square input).
fn svd_any(m: &Matrix64) -> (Svd, bool) {
    let (r, c) = m.shape();
    if r >= c {
        (jacobi_svd(m.data(), r, c), false)
    } else {
        let t = m.transpose();
        (jacobi_svd(t.data(), c, r), true)
    }
}

/// The weight-static coherent MZI-array backend \[47\].
///
/// Every `mesh x mesh` weight block must be factored `U S V^T` and
/// programmed as phase settings; the dominant numeric artifact is that
/// the diagonal (driven through finite-precision attenuators) is
/// quantized to `bits`. Inputs stream through coherently at full range.
#[derive(Debug, Clone, Copy)]
pub struct MziBackend {
    mesh: usize,
    bits: u32,
}

impl MziBackend {
    /// A mesh of size `mesh` with `bits`-bit diagonal programming.
    ///
    /// # Panics
    ///
    /// Panics if `mesh == 0` or `bits` is outside `[2, 16]`.
    pub fn new(mesh: usize, bits: u32) -> Self {
        assert!(mesh > 0, "mesh size must be positive");
        assert!((2..=16).contains(&bits), "precision {bits} out of range");
        MziBackend { mesh, bits }
    }

    /// The paper's 12x12 mesh.
    pub fn paper(bits: u32) -> Self {
        MziBackend::new(12, bits)
    }

    /// Maps one weight block through SVD + quantized diagonal and
    /// reconstructs the effective (hardware-realized) weights.
    fn map_block(&self, block: &Matrix64) -> Matrix64 {
        let (mut svd, transposed) = svd_any(block);
        let (r, c) = block.shape();
        let (m, n) = if transposed { (c, r) } else { (r, c) };
        let q = Quantizer::new(self.bits);
        let smax = svd.s.iter().cloned().fold(0.0f64, f64::max);
        if smax > 0.0 {
            for s in &mut svd.s {
                *s = q.quantize_unit(*s / smax) * smax;
            }
        }
        let out = Matrix64::from_vec(m, n, reconstruct(&svd, m, n));
        if transposed {
            out.transpose()
        } else {
            out
        }
    }
}

impl ComputeBackend for MziBackend {
    fn name(&self) -> &str {
        "mzi-array"
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, _ctx: &mut RunCtx) -> Matrix64 {
        assert_eq!(a.cols(), b.rows(), "gemm shape mismatch");
        let (d, n) = b.shape();
        // Map the static operand (the weights, `b`) block by block.
        let mut b_mapped = Matrix64::zeros(d, n);
        let k = self.mesh;
        for r0 in (0..d).step_by(k) {
            for c0 in (0..n).step_by(k) {
                let h = k.min(d - r0);
                let w = k.min(n - c0);
                let block = b.block(r0, c0, h, w).to_matrix();
                let mapped = self.map_block(&block);
                for i in 0..h {
                    for j in 0..w {
                        b_mapped.set(r0 + i, c0 + j, mapped.get(i, j));
                    }
                }
            }
        }
        a.matmul(&b_mapped.view())
    }
}

/// The weight-static incoherent MRR-bank backend \[52\].
///
/// Incoherent intensity encoding is positive-only on both sides, so a
/// full-range product needs the 4-pass
/// `(A+ - A-)(B+ - B-)` decomposition; each non-negative pass is
/// quantized to `bits` unsigned levels against its own scale. The 4
/// passes quadruple the quantization noise exposure — the numeric cost
/// of Table I's "full range: NO".
#[derive(Debug, Clone, Copy)]
pub struct MrrBackend {
    bits: u32,
}

impl MrrBackend {
    /// A bank with `bits`-bit unsigned operand encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "precision {bits} out of range");
        MrrBackend { bits }
    }

    /// The paper's operating precision.
    pub fn paper(bits: u32) -> Self {
        MrrBackend::new(bits)
    }

    /// Splits into the non-negative part (`keep_positive`) or the negated
    /// negative part, quantized to unsigned `bits` levels.
    fn half(&self, m: &Matrix64, keep_positive: bool) -> Matrix64 {
        let part = m.map(|v| {
            if keep_positive {
                v.max(0.0)
            } else {
                (-v).max(0.0)
            }
        });
        let scale = part.max_abs();
        if scale == 0.0 {
            return part;
        }
        let levels = ((1u32 << self.bits) - 1) as f64;
        part.map(|v| (v / scale * levels).round() / levels * scale)
    }
}

impl ComputeBackend for MrrBackend {
    fn name(&self) -> &str {
        "mrr-bank"
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, _ctx: &mut RunCtx) -> Matrix64 {
        assert_eq!(a.cols(), b.rows(), "gemm shape mismatch");
        let am = a.to_matrix();
        let bm = b.to_matrix();
        let (ap, an) = (&self.half(&am, true), &self.half(&am, false));
        let (bp, bn) = (&self.half(&bm, true), &self.half(&bm, false));
        // Four non-negative passes, recombined electronically.
        let mut out = ap.matmul(bp);
        out.add_assign(&an.matmul(bn));
        let mut cross = ap.matmul(bn);
        cross.add_assign(&an.matmul(bp));
        out.add_assign(&cross.scale(-1.0));
        out
    }
}

/// The PCM-crossbar backend \[16\].
///
/// Weights are stored as discrete non-volatile conductance levels
/// (`bits` of resolution) with per-cell programming variability — PCM
/// write pulses land within a few percent of the target. Inputs stream
/// at full precision. Programming noise is drawn from the [`RunCtx`]
/// seed stream, so runs are reproducible.
#[derive(Debug, Clone, Copy)]
pub struct PcmBackend {
    bits: u32,
    sigma_program: f64,
}

impl PcmBackend {
    /// A crossbar with `bits`-bit conductance levels and relative
    /// programming std-dev `sigma_program`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]` or `sigma_program < 0`.
    pub fn new(bits: u32, sigma_program: f64) -> Self {
        assert!((2..=16).contains(&bits), "precision {bits} out of range");
        assert!(
            sigma_program >= 0.0,
            "programming noise must be non-negative"
        );
        PcmBackend {
            bits,
            sigma_program,
        }
    }

    /// Paper-class operating point: 2% relative programming variability.
    pub fn paper(bits: u32) -> Self {
        PcmBackend::new(bits, 0.02)
    }
}

impl ComputeBackend for PcmBackend {
    fn name(&self) -> &str {
        "pcm-crossbar"
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, ctx: &mut RunCtx) -> Matrix64 {
        assert_eq!(a.cols(), b.rows(), "gemm shape mismatch");
        let mut weights = fake_quantize(&b.to_matrix(), self.bits);
        if self.sigma_program > 0.0 {
            let mut rng = GaussianSampler::new(ctx.next_seed());
            let sigma = self.sigma_program;
            let scale = weights.max_abs();
            for v in weights.data_mut() {
                *v += rng.normal(0.0, sigma * scale);
            }
        }
        a.matmul(&weights.view())
    }
}

/// A low-rank SVD compute backend: weights are replaced by their best
/// rank-`rank` approximation before the product. Not a hardware model in
/// itself but the numeric core of SVD-based photonic weight banks — and
/// a useful accuracy/compression knob behind the same trait.
#[derive(Debug, Clone, Copy)]
pub struct SvdBackend {
    rank: usize,
}

impl SvdBackend {
    /// Keeps the top `rank` singular components of the weights.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        SvdBackend { rank }
    }

    /// The retained rank.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl ComputeBackend for SvdBackend {
    fn name(&self) -> &str {
        "svd-lowrank"
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, _ctx: &mut RunCtx) -> Matrix64 {
        assert_eq!(a.cols(), b.rows(), "gemm shape mismatch");
        let bm = b.to_matrix();
        let (mut svd, transposed) = svd_any(&bm);
        let (r, c) = bm.shape();
        let (m, n) = if transposed { (c, r) } else { (r, c) };
        // Truncation = zeroing the tail singular values; reconstruct then
        // reuses the crate's shared U * diag(S) * V^T routine.
        for s in svd.s.iter_mut().skip(self.rank) {
            *s = 0.0;
        }
        let low = Matrix64::from_vec(m, n, reconstruct(&svd, m, n));
        let b_low = if transposed { low.transpose() } else { low };
        a.matmul(&b_low.view())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix64, Matrix64) {
        let mut rng = GaussianSampler::new(seed);
        (
            Matrix64::from_fn(m, k, |_, _| rng.uniform_in(-1.0, 1.0)),
            Matrix64::from_fn(k, n, |_, _| rng.uniform_in(-1.0, 1.0)),
        )
    }

    #[test]
    fn mzi_backend_tracks_exact_at_high_precision() {
        let (a, b) = rand_pair(10, 24, 14, 1);
        let exact = a.matmul(&b);
        let got = MziBackend::paper(12).gemm(a.view(), b.view(), &mut RunCtx::new(0));
        let rel = got.max_abs_diff(&exact) / exact.max_abs();
        assert!(rel < 0.02, "12-bit MZI mapping error {rel}");
    }

    #[test]
    fn mzi_low_bits_hurt_more() {
        let (a, b) = rand_pair(12, 12, 12, 2);
        let exact = a.matmul(&b);
        let mut ctx = RunCtx::new(0);
        let e4 = MziBackend::paper(4)
            .gemm(a.view(), b.view(), &mut ctx)
            .max_abs_diff(&exact);
        let e8 = MziBackend::paper(8)
            .gemm(a.view(), b.view(), &mut ctx)
            .max_abs_diff(&exact);
        assert!(e8 < e4, "8-bit {e8} must beat 4-bit {e4}");
    }

    #[test]
    fn mrr_four_pass_recombines_full_range() {
        let (a, b) = rand_pair(9, 17, 11, 3);
        let exact = a.matmul(&b);
        let got = MrrBackend::paper(10).gemm(a.view(), b.view(), &mut RunCtx::new(0));
        let rel = got.max_abs_diff(&exact) / exact.max_abs();
        assert!(rel < 0.02, "10-bit MRR decomposition error {rel}");
        // Signs survive the non-negative decomposition.
        let mut sign_matches = 0;
        let total = exact.data().len();
        for (x, y) in exact.data().iter().zip(got.data()) {
            if x.signum() == y.signum() || x.abs() < 0.05 {
                sign_matches += 1;
            }
        }
        assert!(sign_matches as f64 / total as f64 > 0.95);
    }

    #[test]
    fn pcm_programming_noise_is_reproducible_per_seed() {
        let (a, b) = rand_pair(8, 12, 8, 4);
        let backend = PcmBackend::paper(8);
        let r1 = backend.gemm(a.view(), b.view(), &mut RunCtx::new(5));
        let r2 = backend.gemm(a.view(), b.view(), &mut RunCtx::new(5));
        assert_eq!(r1, r2);
        let r3 = backend.gemm(a.view(), b.view(), &mut RunCtx::new(6));
        assert!(r1.max_abs_diff(&r3) > 0.0, "fresh programming per seed");
    }

    #[test]
    fn pcm_noiseless_is_pure_quantization() {
        let (a, b) = rand_pair(6, 10, 6, 5);
        let exact = a.matmul(&b);
        let got = PcmBackend::new(12, 0.0).gemm(a.view(), b.view(), &mut RunCtx::new(0));
        let rel = got.max_abs_diff(&exact) / exact.max_abs();
        assert!(rel < 0.01, "12-bit PCM quantization error {rel}");
    }

    #[test]
    fn svd_full_rank_is_near_exact_and_truncation_degrades() {
        let (a, b) = rand_pair(8, 12, 10, 6);
        let exact = a.matmul(&b);
        let mut ctx = RunCtx::new(0);
        let full = SvdBackend::new(10).gemm(a.view(), b.view(), &mut ctx);
        assert!(full.max_abs_diff(&exact) < 1e-6, "full rank reconstructs");
        let rank2 = SvdBackend::new(2).gemm(a.view(), b.view(), &mut ctx);
        assert!(
            rank2.max_abs_diff(&exact) > full.max_abs_diff(&exact),
            "rank-2 truncation must lose information"
        );
    }

    #[test]
    fn svd_handles_wide_weights() {
        let (a, b) = rand_pair(5, 4, 9, 7); // b is wide (4 x 9)
        let exact = a.matmul(&b);
        let full = SvdBackend::new(9).gemm(a.view(), b.view(), &mut RunCtx::new(0));
        assert!(full.max_abs_diff(&exact) < 1e-6);
    }
}
