//! Electronic platform models (paper Fig. 13, Section V-D).
//!
//! The paper profiles real hardware (A100, Core i7, Coral Edge TPU, FPGA
//! Transformer accelerators). None of that hardware is available here, so
//! each platform is an analytic `(sustained MAC rate, energy per MAC)`
//! pair calibrated to the paper's published ratios: Lightening-Transformer
//! achieves >300x (CPU), ~6.6x (GPU), ~18x (Edge TPU) and ~20x (FPGA
//! DSA) energy reductions, while out-throughput-ing all of them
//! (DESIGN.md, Substitution 4).

use lt_photonics::units::{MilliJoules, Milliseconds};
use lt_workloads::TransformerConfig;

/// An analytic electronic inference platform.
#[derive(Debug, Clone, PartialEq)]
pub struct ElectronicPlatform {
    /// Platform name.
    pub name: String,
    /// Sustained throughput at batch 1, giga-MACs per second.
    pub sustained_gmacs: f64,
    /// Average marginal energy per MAC, picojoules.
    pub energy_per_mac_pj: f64,
}

impl ElectronicPlatform {
    /// Nvidia A100 GPU with automatic mixed precision, batch 1.
    pub fn a100() -> Self {
        ElectronicPlatform {
            name: "GPU (A100)".to_string(),
            sustained_gmacs: 1_260.0,
            energy_per_mac_pj: 2.0,
        }
    }

    /// Intel Core i7-9750H CPU.
    pub fn core_i7() -> Self {
        ElectronicPlatform {
            name: "CPU (i7-9750H)".to_string(),
            sustained_gmacs: 50.0,
            energy_per_mac_pj: 90.0,
        }
    }

    /// Google Coral Edge TPU (\[44\]).
    pub fn edge_tpu() -> Self {
        ElectronicPlatform {
            name: "Edge TPU".to_string(),
            sustained_gmacs: 190.0,
            energy_per_mac_pj: 5.4,
        }
    }

    /// FPGA Transformer accelerators (AutoViT-Acc / HEAT-ViT class).
    pub fn fpga_dsa() -> Self {
        ElectronicPlatform {
            name: "FPGA DSA".to_string(),
            sustained_gmacs: 250.0,
            energy_per_mac_pj: 6.0,
        }
    }

    /// All four comparison platforms of Fig. 13.
    pub fn fig13_platforms() -> Vec<ElectronicPlatform> {
        vec![
            Self::core_i7(),
            Self::a100(),
            Self::edge_tpu(),
            Self::fpga_dsa(),
        ]
    }

    /// Single-inference latency for a model.
    pub fn latency(&self, model: &TransformerConfig) -> Milliseconds {
        let macs = model.total_macs() as f64;
        Milliseconds(macs / (self.sustained_gmacs * 1e9) * 1e3)
    }

    /// Single-inference energy for a model.
    pub fn energy(&self, model: &TransformerConfig) -> MilliJoules {
        let macs = model.total_macs() as f64;
        MilliJoules(macs * self.energy_per_mac_pj * 1e-9)
    }

    /// Frames per second at batch 1.
    pub fn fps(&self, model: &TransformerConfig) -> f64 {
        1e3 / self.latency(model).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deit_t() -> TransformerConfig {
        TransformerConfig::deit_tiny()
    }

    #[test]
    fn gpu_runs_deit_t_around_a_millisecond() {
        let gpu = ElectronicPlatform::a100();
        let ms = gpu.latency(&deit_t()).value();
        assert!((0.5..2.5).contains(&ms), "GPU latency {ms} ms");
    }

    #[test]
    fn cpu_is_slowest_and_hungriest() {
        let models = ElectronicPlatform::fig13_platforms();
        let cpu = ElectronicPlatform::core_i7();
        for p in &models {
            assert!(cpu.fps(&deit_t()) <= p.fps(&deit_t()) + 1e-9);
            assert!(cpu.energy(&deit_t()).value() >= p.energy(&deit_t()).value() - 1e-12);
        }
    }

    #[test]
    fn paper_energy_ratios_hold_vs_ltb() {
        // LT-B 4-bit DeiT-T is ~0.38 mJ (Table V). Check the paper's
        // stated reductions: >300x CPU, ~6.6x GPU, ~18x TPU, ~20x FPGA.
        let lt_mj = 0.38;
        let ratio = |p: ElectronicPlatform| p.energy(&deit_t()).value() / lt_mj;
        assert!(ratio(ElectronicPlatform::core_i7()) > 200.0);
        let gpu = ratio(ElectronicPlatform::a100());
        assert!((3.0..12.0).contains(&gpu), "GPU ratio {gpu}");
        let tpu = ratio(ElectronicPlatform::edge_tpu());
        assert!((10.0..30.0).contains(&tpu), "TPU ratio {tpu}");
        let fpga = ratio(ElectronicPlatform::fpga_dsa());
        assert!((12.0..35.0).contains(&fpga), "FPGA ratio {fpga}");
    }

    #[test]
    fn energy_scales_with_model_size() {
        let gpu = ElectronicPlatform::a100();
        let t = gpu.energy(&TransformerConfig::deit_tiny()).value();
        let b = gpu.energy(&TransformerConfig::deit_base()).value();
        assert!(b > 10.0 * t, "DeiT-B must cost >10x DeiT-T");
    }
}
