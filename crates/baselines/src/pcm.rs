//! The PCM-crossbar baseline accelerator (\[16\], Table I row 2) — an
//! *extension*: the paper compares against it qualitatively (Table I) but
//! not quantitatively; we model it so the full Table I can be evaluated.
//!
//! Phase-change-material crossbars store weights as non-volatile
//! transmission states: unlike the MRR bank there is **zero** static
//! locking power, and the crossbar computes one-shot MM. The structural
//! handicaps (per Table I):
//!
//! 1. **Positive-only operands on both sides** — full-range GEMMs need the
//!    4-pass `(X+ - X-)(Y+ - Y-)` decomposition.
//! 2. **Medium mapping cost** — PCM programming is non-volatile but slow
//!    (10 ns - 10 us per cell, paper Section II-C) and costs real write
//!    energy, so *dynamic* operands (attention) stall the machine the same
//!    way the MZI mesh does.

use crate::BaselineReport;
use lt_photonics::constants::PTC_CLOCK_GHZ;
use lt_photonics::devices::{Adc, Dac, MachZehnderModulator, Photodetector, Tia};
use lt_photonics::units::{GigaHertz, MilliJoules, Milliseconds};
use lt_workloads::{GemmOp, Module, OperandDynamics, TransformerConfig};

/// Full-range decomposition passes (both operands positive-only).
pub const FULL_RANGE_PASSES: u64 = 4;

/// PCM cell programming time, seconds (mid of the paper's 10 ns - 10 us
/// range; a whole block programs its rows in parallel).
pub const PCM_WRITE_TIME_S: f64 = 100e-9;

/// PCM cell write energy, picojoules (amorphization/crystallization pulse).
pub const PCM_WRITE_PJ: f64 = 50.0;

/// Area per crossbar system (crossbar + converters + buffers), mm^2.
pub const CROSSBAR_SYSTEM_MM2: f64 = 1.5;

/// SRAM traffic energy per operand byte.
const OPERAND_PJ_PER_BYTE: f64 = 1.5;
/// HBM energy per byte.
const HBM_PJ_PER_BYTE: f64 = 40.0;

/// The PCM-crossbar accelerator model.
///
/// ```
/// use lt_baselines::PcmAccelerator;
/// let pcm = PcmAccelerator::paper_matched(4);
/// assert_eq!(pcm.crossbars(), 40); // area-matched to LT-B
/// ```
#[derive(Debug, Clone)]
pub struct PcmAccelerator {
    k: usize,
    crossbars: usize,
    bits: u32,
    clock: GigaHertz,
    dac: Dac,
    adc: Adc,
    tia: Tia,
    pd: Photodetector,
    input_mod: MachZehnderModulator,
}

impl PcmAccelerator {
    /// Area-matched to LT-B (~60.3 mm^2), crossbar size 12.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn paper_matched(bits: u32) -> Self {
        Self::area_matched(12, 60.3, bits)
    }

    /// Builds an accelerator with as many crossbar systems as fit in
    /// `target_mm2`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, no crossbars fit, or `bits` is out of range.
    pub fn area_matched(k: usize, target_mm2: f64, bits: u32) -> Self {
        assert!(k > 0, "crossbar size must be positive");
        assert!((2..=16).contains(&bits), "precision {bits} out of range");
        let crossbars = (target_mm2 / CROSSBAR_SYSTEM_MM2).floor() as usize;
        assert!(
            crossbars > 0,
            "target area {target_mm2} mm^2 fits no crossbars"
        );
        PcmAccelerator {
            k,
            crossbars,
            bits,
            clock: GigaHertz(PTC_CLOCK_GHZ),
            dac: Dac::paper(),
            adc: Adc::paper(),
            tia: Tia::paper(),
            pd: Photodetector::paper(),
            input_mod: MachZehnderModulator::paper(),
        }
    }

    /// Crossbar (weight block) size `k`.
    pub fn crossbar_size(&self) -> usize {
        self.k
    }

    /// The numeric [`lt_core::ComputeBackend`] matching this
    /// accelerator's precision (discrete conductance levels + programming
    /// variability), for accuracy experiments.
    pub fn compute_backend(&self) -> crate::backend::PcmBackend {
        crate::backend::PcmBackend::paper(self.bits)
    }

    /// Number of crossbar systems.
    pub fn crossbars(&self) -> usize {
        self.crossbars
    }

    /// Simulates one GEMM. Static weights amortize their (slow, costly)
    /// programming across the whole inference; dynamic operands must be
    /// reprogrammed at runtime and stall the machine.
    pub fn run_op(&self, op: &GemmOp) -> BaselineReport {
        let k = self.k as u64;
        let (m, d, n) = (op.m as u64, op.k as u64, op.n as u64);
        let count = op.count as u64;
        let period = self.clock.period();

        // One-shot MM: a crossbar multiplies a [k, k] block by a [k, k]
        // input chunk per cycle.
        let blocks = d.div_ceil(k) * n.div_ceil(k);
        let invocations = blocks * m.div_ceil(k) * FULL_RANGE_PASSES * count;
        let compute_cycles = invocations.div_ceil(self.crossbars as u64);
        let compute_ms = compute_cycles as f64 * period.value() * 1e-9;

        // Programming: W+/W- sub-arrays per block. Static weights program
        // once per inference pass over the blocks; dynamic operands
        // reprogram for every fresh operand value (every execution).
        let writes = blocks * 2 * count;
        let write_stall_ms = match op.dynamics() {
            // Writes round-robin across crossbars; each stalls its own
            // array only, but attention cannot hide them behind compute
            // because the operand is needed immediately.
            OperandDynamics::BothDynamic => {
                writes.div_ceil(self.crossbars as u64) as f64 * PCM_WRITE_TIME_S * 1e3
            }
            // Static weights: programmed while the previous block computes
            // (double buffering amortizes all but the first).
            OperandDynamics::WeightStatic => {
                (writes.div_ceil(self.crossbars as u64) as f64 * PCM_WRITE_TIME_S * 1e3)
                    .max(compute_ms)
                    - compute_ms
            }
        };
        let latency = Milliseconds(compute_ms + write_stall_ms);

        // Write energy is charged per programmed cell regardless.
        let cell_writes = (d * n * 2 * count) as f64;
        let op1_mod = MilliJoules(cell_writes * PCM_WRITE_PJ * 1e-9);
        let e_dac = self.dac.scaled_power(self.bits, self.clock) * period;
        let op1_dac = MilliJoules(cell_writes * e_dac.value() * 1e-9);

        // Input streaming, 4 passes.
        let e_mod = self.input_mod.tuning_power() * period;
        let input_loads = (m * d * n.div_ceil(k) * FULL_RANGE_PASSES * count) as f64;
        let op2_encode = MilliJoules(input_loads * (e_dac.value() + e_mod.value()) * 1e-9);

        // Detection/conversion, 4 passes.
        let e_pd = self.pd.power * period;
        let e_tia = self.tia.power * period;
        let e_adc = self.adc.scaled_power(self.bits, self.clock) * period;
        let outputs = (m * n * d.div_ceil(k) * FULL_RANGE_PASSES * count) as f64;
        let det = MilliJoules(outputs * (e_pd.value() + e_tia.value()) * 1e-9);
        let adc = MilliJoules(outputs * e_adc.value() * 1e-9);

        // Short incoherent link; laser minor.
        let laser = MilliJoules(0.01 * compute_ms);

        let byte = self.bits as f64 / 8.0;
        let dm_pj = input_loads * byte * OPERAND_PJ_PER_BYTE
            + (d * n * count) as f64 * byte * HBM_PJ_PER_BYTE
            + (m * n * count) as f64 * 2.0 * OPERAND_PJ_PER_BYTE;
        let data_movement = MilliJoules(dm_pj * 1e-9);

        let energy = op1_mod + op1_dac + op2_encode + det + adc + laser + data_movement;
        BaselineReport {
            energy,
            latency,
            op1_mod,
            op1_dac,
            op2_encode,
            det,
            adc,
            laser,
            data_movement,
            reconfig_latency: Milliseconds(write_stall_ms),
        }
    }

    /// Simulates a model, split by module.
    pub fn run_model(&self, model: &TransformerConfig) -> PcmModelReport {
        let mut mha = BaselineReport::default();
        let mut ffn = BaselineReport::default();
        let mut other = BaselineReport::default();
        for op in model.gemm_trace() {
            let r = self.run_op(&op);
            match op.module() {
                Module::Mha => mha.merge(&r),
                Module::Ffn => ffn.merge(&r),
                Module::Other => other.merge(&r),
            }
        }
        let mut all = BaselineReport::default();
        all.merge(&mha);
        all.merge(&ffn);
        all.merge(&other);
        PcmModelReport {
            mha,
            ffn,
            other,
            all,
        }
    }
}

/// Per-module results for the PCM baseline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PcmModelReport {
    /// Attention products (runtime-reprogrammed — the pain point).
    pub mha: BaselineReport,
    /// FFN linears.
    pub ffn: BaselineReport,
    /// Other linears.
    pub other: BaselineReport,
    /// Total.
    pub all: BaselineReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_is_stall_dominated() {
        // Dynamic operands force runtime PCM writes: reprogramming must
        // dominate MHA latency (Table I's "no dynamic MM support").
        let pcm = PcmAccelerator::paper_matched(4);
        let r = pcm.run_model(&TransformerConfig::deit_tiny());
        let share = r.mha.reconfig_latency.value() / r.mha.latency.value();
        assert!(share > 0.5, "MHA write-stall share {share}");
    }

    #[test]
    fn static_weights_overlap_writes_with_compute() {
        // Same shape, static vs dynamic: the static op overlaps PCM writes
        // with compute (latency = max), the dynamic op serializes them
        // (latency = sum), so static must be strictly faster.
        let pcm = PcmAccelerator::paper_matched(4);
        let stat = pcm.run_op(&GemmOp::new(lt_workloads::OpKind::Ffn1, 197, 192, 768, 12));
        let dynamic = pcm.run_op(&GemmOp::new(
            lt_workloads::OpKind::AttnAv,
            197,
            192,
            768,
            12,
        ));
        assert!(
            stat.latency.value() < dynamic.latency.value(),
            "static {} ms vs dynamic {} ms",
            stat.latency.value(),
            dynamic.latency.value()
        );
    }

    #[test]
    fn writes_bound_short_workloads() {
        // With only 197 reuse rows per block, Transformer linears are
        // *write-bandwidth-bound* on PCM: the stall exceeds half the total
        // latency. (CNN kernels with huge reuse would amortize this; the
        // Transformer shapes don't - another reason PCM fits CNNs better.)
        let pcm = PcmAccelerator::paper_matched(4);
        let op = GemmOp::new(lt_workloads::OpKind::Ffn1, 197, 192, 768, 12);
        let r = pcm.run_op(&op);
        let share = r.reconfig_latency.value() / r.latency.value();
        assert!(share > 0.5, "FFN write-stall share {share}");
    }

    #[test]
    fn no_locking_power_but_write_energy_instead() {
        // PCM pays per write, not per cycle: op1_mod must scale with the
        // weight volume, not with runtime.
        let pcm = PcmAccelerator::paper_matched(4);
        let small = pcm.run_op(&GemmOp::new(lt_workloads::OpKind::Ffn1, 10, 48, 48, 1));
        let big = pcm.run_op(&GemmOp::new(lt_workloads::OpKind::Ffn1, 100_000, 48, 48, 1));
        assert!(
            (small.op1_mod.value() - big.op1_mod.value()).abs() < 1e-12,
            "write energy is independent of the streamed rows"
        );
        assert!(big.latency.value() > small.latency.value());
    }

    #[test]
    fn four_pass_decomposition_applies() {
        // Use a compute-bound shape (huge reuse) so the cycle count is
        // visible, then check the 4-pass invocation math.
        let pcm = PcmAccelerator::paper_matched(4);
        let m = 48_000u64;
        let op = GemmOp::new(lt_workloads::OpKind::Ffn1, m as usize, 48, 48, 1);
        let r = pcm.run_op(&op);
        let invocations = 4u64 * 4 * m.div_ceil(12) * 4; // blocks * m-chunks * passes
        let cycles = invocations.div_ceil(40);
        let expect_ms = cycles as f64 * 200e-12 * 1e3;
        assert!(
            (r.latency.value() - expect_ms).abs() / expect_ms < 0.05,
            "latency {} vs expected {}",
            r.latency.value(),
            expect_ms
        );
    }

    #[test]
    fn worse_than_nothing_on_attention_vs_mrr() {
        // The MRR bank (dynamic-capable) must beat PCM on attention latency.
        use crate::mrr::MrrAccelerator;
        let pcm = PcmAccelerator::paper_matched(4).run_model(&TransformerConfig::deit_tiny());
        let mrr = MrrAccelerator::paper_baseline(4).run_model(&TransformerConfig::deit_tiny());
        assert!(pcm.mha.latency.value() > mrr.mha.latency.value());
    }

    #[test]
    #[should_panic(expected = "fits no crossbars")]
    fn tiny_area_rejected() {
        PcmAccelerator::area_matched(12, 0.1, 4);
    }
}
