//! The MZI-array baseline accelerator (\[47\], paper Section V-C).
//!
//! A weight-static *coherent* design: each `N x N` Clements mesh of MZIs
//! realizes a unitary; a weight block is programmed as `U S V^T` after an
//! SVD + phase decomposition. Its handicaps, all modeled here:
//!
//! 1. **Mapping cost** — every weight block needs an SVD (we measure our
//!    own Jacobi SVD; the paper quotes ~1.5 ms per 12x12 on a CPU). For
//!    dynamic attention operands this is unaffordable, so the paper (and
//!    this model) delegates MHA to an MRR bank.
//! 2. **Reconfiguration stalls** — programming the low-loss MEMS phase
//!    shifters takes 2 us per block, ~10,000 photonic cycles.
//! 3. **Laser power** — insertion loss grows linearly in dB (so
//!    exponentially in power) with mesh depth: ~2N cascaded stages make
//!    the laser >75% of total energy (Fig. 11 right).
//! 4. **MVM only, single wavelength** — far fewer MACs per cycle per area.

use crate::mrr::MrrAccelerator;
use crate::BaselineReport;
use lt_photonics::constants::PTC_CLOCK_GHZ;
use lt_photonics::devices::{Adc, Dac, Laser, MemsPhaseShifter, Photodetector, Tia};
use lt_photonics::units::{Decibels, GigaHertz, MilliJoules, MilliWatts, Milliseconds};
use lt_workloads::{GemmOp, Module, OperandDynamics, TransformerConfig};

/// Insertion loss of one MZI stage (two couplers + two phase shifters).
pub const MZI_STAGE_LOSS_DB: f64 = 1.32;

/// System loss margin, dB (same margin class as the LT link budget).
const MARGIN_DB: f64 = 8.0;

/// Area of one MZI-array core *system* (mesh + converters + buffers),
/// mm^2. MZIs are bulky (~300 x 100 um each; ~2 N^2 of them per mesh),
/// which is why only a few cores fit (paper Section V-C).
pub const CORE_SYSTEM_MM2: f64 = 10.0;

/// SRAM traffic energy per operand byte.
const OPERAND_PJ_PER_BYTE: f64 = 1.5;
/// HBM energy per byte.
const HBM_PJ_PER_BYTE: f64 = 40.0;

/// The MZI-array accelerator model (with an embedded MRR bank for the
/// attention products it cannot run).
///
/// ```
/// use lt_baselines::MziAccelerator;
/// let mzi = MziAccelerator::paper_baseline(4);
/// assert_eq!(mzi.cores(), 6); // area-matched to LT-B
/// // Mesh loss: ~2N stages of 1.32 dB.
/// assert!(mzi.mesh_loss().value() > 25.0);
/// ```
#[derive(Debug, Clone)]
pub struct MziAccelerator {
    n: usize,
    cores: usize,
    bits: u32,
    clock: GigaHertz,
    dac: Dac,
    adc: Adc,
    tia: Tia,
    pd: Photodetector,
    laser: Laser,
    mems: MemsPhaseShifter,
    mha_fallback: MrrAccelerator,
}

impl MziAccelerator {
    /// The paper's baseline: 12x12 meshes, area-matched to LT-B
    /// (~60.3 mm^2 => 6 core systems), MHA delegated to the MRR bank.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn paper_baseline(bits: u32) -> Self {
        Self::area_matched(12, 60.3, bits)
    }

    /// Builds an accelerator with as many core systems as fit in
    /// `target_mm2`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, no cores fit, or `bits` is out of range.
    pub fn area_matched(n: usize, target_mm2: f64, bits: u32) -> Self {
        assert!(n > 0, "mesh size must be positive");
        assert!((2..=16).contains(&bits), "precision {bits} out of range");
        let cores = (target_mm2 / CORE_SYSTEM_MM2).floor() as usize;
        assert!(cores > 0, "target area {target_mm2} mm^2 fits no cores");
        MziAccelerator {
            n,
            cores,
            bits,
            clock: GigaHertz(PTC_CLOCK_GHZ),
            dac: Dac::paper(),
            adc: Adc::paper(),
            tia: Tia::paper(),
            pd: Photodetector::paper(),
            laser: Laser::paper(),
            mems: MemsPhaseShifter::paper(),
            mha_fallback: MrrAccelerator::paper_baseline(bits),
        }
    }

    /// Mesh size `N`.
    pub fn mesh_size(&self) -> usize {
        self.n
    }

    /// The numeric [`lt_core::ComputeBackend`] matching this
    /// accelerator's mesh size and precision (SVD mapping + quantized
    /// diagonal), for accuracy experiments.
    pub fn compute_backend(&self) -> crate::backend::MziBackend {
        crate::backend::MziBackend::new(self.n, self.bits)
    }

    /// Number of core systems.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// End-to-end mesh insertion loss: `U` and `V^T` sections of `N`
    /// stages each, plus the diagonal.
    pub fn mesh_loss(&self) -> Decibels {
        Decibels((2 * self.n + 1) as f64 * MZI_STAGE_LOSS_DB)
    }

    /// Electrical laser power: every input port must deliver the detector
    /// sensitivity through the full mesh loss (single wavelength — no WDM
    /// sharing of the sensitivity floor).
    pub fn laser_power(&self) -> MilliWatts {
        let loss = Decibels(self.mesh_loss().value() + MARGIN_DB);
        let precision = 2f64.powi(self.bits as i32 - 4);
        let per_port = self.pd.sensitivity().value() / loss.to_linear();
        let optical = (self.cores * self.n) as f64 * per_port * precision;
        self.laser.electrical_power(MilliWatts(optical))
    }

    /// Simulates one *weight-static* GEMM on the meshes.
    ///
    /// # Panics
    ///
    /// Panics if called with a dynamic (attention) op — those must go to
    /// [`MziAccelerator::run_model`], which delegates them to the MRR bank.
    pub fn run_static_op(&self, op: &GemmOp) -> BaselineReport {
        assert_eq!(
            op.dynamics(),
            OperandDynamics::WeightStatic,
            "MZI meshes cannot execute dynamic MMs (paper Challenge 1)"
        );
        let nn = self.n as u64;
        let (m, d, n) = (op.m as u64, op.k as u64, op.n as u64);
        let count = op.count as u64;
        let period = self.clock.period();

        // Weight blocks to program; each serves all m input rows (MVM).
        let blocks = d.div_ceil(nn) * n.div_ceil(nn) * count;
        let compute_cycles = (blocks * m).div_ceil(self.cores as u64);
        let compute_ms = compute_cycles as f64 * period.value() * 1e-9;
        // MEMS reconfiguration stalls: blocks programmed round-robin over
        // the cores; programming cannot overlap its own core's compute.
        let reconfig_ms =
            blocks.div_ceil(self.cores as u64) as f64 * self.mems.response_time_s * 1e3;
        let latency = Milliseconds(compute_ms + reconfig_ms);

        // Laser burns during compute (gated during reconfig - generous).
        let laser = MilliJoules(self.laser_power().value() / 1e3 * compute_ms);

        // Static operand: 2 N^2 phases per block (U and V), DAC-written.
        let e_dac = self.dac.scaled_power(self.bits, self.clock) * period;
        let phase_writes = (blocks * 2 * nn * nn) as f64;
        let op1_dac = MilliJoules(phase_writes * e_dac.value() * 1e-9);
        // MEMS holds at zero power: no locking term (its cost is latency).
        let op1_mod = MilliJoules(0.0);

        // Dynamic input: re-streamed per column-block group.
        let input_loads = (m * d * n.div_ceil(nn) * count) as f64;
        let e_mod = lt_photonics::devices::MachZehnderModulator::paper().tuning_power() * period;
        let op2_encode = MilliJoules(input_loads * (e_dac.value() + e_mod.value()) * 1e-9);

        // Detection and conversion: coherent full-range => single pass.
        let outputs = (m * n * d.div_ceil(nn) * count) as f64;
        let e_pd = self.pd.power * period;
        let e_tia = self.tia.power * period;
        let e_adc = self.adc.scaled_power(self.bits, self.clock) * period;
        let det = MilliJoules(outputs * (e_pd.value() + e_tia.value()) * 1e-9);
        let adc = MilliJoules(outputs * e_adc.value() * 1e-9);

        let byte = self.bits as f64 / 8.0;
        let dm_pj = input_loads * byte * OPERAND_PJ_PER_BYTE
            + (d * n * count) as f64 * byte * HBM_PJ_PER_BYTE
            + (m * n * count) as f64 * 2.0 * OPERAND_PJ_PER_BYTE;
        let data_movement = MilliJoules(dm_pj * 1e-9);

        let energy = laser + op1_dac + op1_mod + op2_encode + det + adc + data_movement;
        BaselineReport {
            energy,
            latency,
            op1_mod,
            op1_dac,
            op2_encode,
            det,
            adc,
            laser,
            data_movement,
            reconfig_latency: Milliseconds(reconfig_ms),
        }
    }

    /// Simulates a model: weight-static GEMMs on the meshes, dynamic
    /// attention products on the embedded MRR bank (as the paper assumes).
    pub fn run_model(&self, model: &TransformerConfig) -> MziModelReport {
        let mut mha = BaselineReport::default();
        let mut ffn = BaselineReport::default();
        let mut other = BaselineReport::default();
        for op in model.gemm_trace() {
            match op.module() {
                Module::Mha => mha.merge(&self.mha_fallback.run_op(&op)),
                Module::Ffn => ffn.merge(&self.run_static_op(&op)),
                Module::Other => other.merge(&self.run_static_op(&op)),
            }
        }
        let mut all = BaselineReport::default();
        all.merge(&mha);
        all.merge(&ffn);
        all.merge(&other);
        MziModelReport {
            mha,
            ffn,
            other,
            all,
        }
    }
}

/// Per-module results for the MZI baseline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MziModelReport {
    /// Attention products (executed on the MRR fallback).
    pub mha: BaselineReport,
    /// FFN linears (on the meshes).
    pub ffn: BaselineReport,
    /// Other linears (on the meshes).
    pub other: BaselineReport,
    /// Total.
    pub all: BaselineReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_t_4bit_matches_table_v_bands() {
        // Paper Table V (MZI, 4-bit, DeiT-T): FFN 1.47 mJ / 6.27 ms,
        // All 2.98 mJ / 12.37 ms.
        let mzi = MziAccelerator::paper_baseline(4);
        let r = mzi.run_model(&TransformerConfig::deit_tiny());
        let ffn = r.ffn.energy.value();
        let all = r.all.energy.value();
        assert!((0.7..3.2).contains(&ffn), "FFN {ffn} mJ");
        assert!((1.5..6.0).contains(&all), "All {all} mJ");
        let ffn_ms = r.ffn.latency.value();
        let all_ms = r.all.latency.value();
        assert!((3.0..13.0).contains(&ffn_ms), "FFN latency {ffn_ms} ms");
        assert!((6.0..26.0).contains(&all_ms), "All latency {all_ms} ms");
    }

    #[test]
    fn reconfiguration_dominates_latency() {
        // 2 us MEMS programming x thousands of blocks >> compute time.
        let mzi = MziAccelerator::paper_baseline(4);
        let op = GemmOp::new(lt_workloads::OpKind::Ffn1, 197, 192, 768, 12);
        let r = mzi.run_static_op(&op);
        assert!(
            r.reconfig_latency.value() / r.latency.value() > 0.9,
            "reconfig share {}",
            r.reconfig_latency.value() / r.latency.value()
        );
    }

    #[test]
    fn laser_dominates_energy() {
        // Fig. 11 right: laser > 75% of the MZI linear-layer energy.
        let mzi = MziAccelerator::paper_baseline(4);
        let op = GemmOp::new(lt_workloads::OpKind::Ffn1, 197, 192, 768, 1);
        let r = mzi.run_static_op(&op);
        let share = r.laser.value() / r.energy.value();
        assert!(share > 0.6, "laser share {share}");
    }

    #[test]
    fn eight_bit_explodes_laser_energy() {
        // Paper: MZI DeiT-T all-energy goes 2.98 -> 37.18 mJ (12.5x) from
        // 4-bit to 8-bit, driven by the exponential laser scaling.
        let e4 = MziAccelerator::paper_baseline(4)
            .run_model(&TransformerConfig::deit_tiny())
            .all
            .energy
            .value();
        let e8 = MziAccelerator::paper_baseline(8)
            .run_model(&TransformerConfig::deit_tiny())
            .all
            .energy
            .value();
        let ratio = e8 / e4;
        assert!((5.0..16.0).contains(&ratio), "8/4-bit energy ratio {ratio}");
    }

    #[test]
    fn mesh_loss_grows_linearly_in_db() {
        let small = MziAccelerator::area_matched(8, 60.0, 4).mesh_loss().value();
        let large = MziAccelerator::area_matched(16, 60.0, 4)
            .mesh_loss()
            .value();
        assert!((large - small - 8.0 * 2.0 * MZI_STAGE_LOSS_DB).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot execute dynamic")]
    fn dynamic_ops_rejected_on_meshes() {
        let mzi = MziAccelerator::paper_baseline(4);
        mzi.run_static_op(&GemmOp::new(lt_workloads::OpKind::AttnQk, 8, 8, 8, 1));
    }
}
