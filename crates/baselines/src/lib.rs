//! Baseline accelerators for the Lightening-Transformer evaluation.
//!
//! * [`svd`] — one-sided Jacobi SVD, the operand-mapping step the MZI
//!   baseline must run for every weight tile (we *measure* it rather than
//!   assume it).
//! * [`mzi`] — the weight-static coherent MZI-array accelerator \[47\]:
//!   SVD + phase decomposition per tile, 2 us MEMS reconfiguration, laser
//!   power exponential in mesh depth, MVM-only.
//! * [`mrr`] — the weight-static incoherent MRR-bank accelerator \[52\]:
//!   per-ring locking power scaling with total computation, non-negative
//!   operands requiring 4-pass full-range decomposition, MVM-only.
//! * [`electronic`] — analytic models of the CPU/GPU/TPU/FPGA platforms of
//!   Fig. 13, calibrated to the paper's published ratios.
//! * [`comparison`] — the qualitative PTC feature matrix of Table I.
//! * [`backend`] — numeric [`lt_core::ComputeBackend`] implementations of
//!   every baseline, so baseline-vs-DPTC accuracy comparisons are a
//!   backend swap rather than a parallel code path.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod comparison;
pub mod electronic;
pub mod mrr;
pub mod mzi;
pub mod pcm;
pub mod svd;

pub use backend::{MrrBackend, MziBackend, PcmBackend, SvdBackend};
pub use comparison::{ptc_design_table, PtcDesign};
pub use electronic::ElectronicPlatform;
pub use mrr::MrrAccelerator;
pub use mzi::MziAccelerator;
pub use pcm::PcmAccelerator;
pub use svd::jacobi_svd;

use lt_photonics::units::{MilliJoules, Milliseconds};

/// A baseline's per-workload result in the paper's Table V quantities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineReport {
    /// Total energy.
    pub energy: MilliJoules,
    /// Total latency.
    pub latency: Milliseconds,
    /// Energy spent holding/locking the static operand (`op1-mod`).
    pub op1_mod: MilliJoules,
    /// Energy spent writing the static operand (`op1-DAC`).
    pub op1_dac: MilliJoules,
    /// Energy encoding the dynamic operand (`op2-DAC` + `op2-mod`).
    pub op2_encode: MilliJoules,
    /// Detection energy (photodetectors + TIAs).
    pub det: MilliJoules,
    /// A/D conversion energy.
    pub adc: MilliJoules,
    /// Laser energy.
    pub laser: MilliJoules,
    /// SRAM/HBM data movement energy.
    pub data_movement: MilliJoules,
    /// Time lost to operand mapping / device reprogramming.
    pub reconfig_latency: Milliseconds,
}

impl BaselineReport {
    /// Energy-delay product, mJ * ms.
    pub fn edp(&self) -> f64 {
        self.energy.value() * self.latency.value()
    }

    /// Merges another report (sequential execution).
    pub fn merge(&mut self, other: &BaselineReport) {
        self.energy += other.energy;
        self.latency += other.latency;
        self.op1_mod += other.op1_mod;
        self.op1_dac += other.op1_dac;
        self.op2_encode += other.op2_encode;
        self.det += other.det;
        self.adc += other.adc;
        self.laser += other.laser;
        self.data_movement += other.data_movement;
        self.reconfig_latency += other.reconfig_latency;
    }
}
