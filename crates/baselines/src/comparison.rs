//! The qualitative PTC design comparison of the paper's Table I.

use std::fmt;

/// How an operand can be supplied to a photonic tensor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandSupport {
    /// Can the operand change every cycle without reprogramming stalls?
    pub dynamic: bool,
    /// Can the operand carry signed (full-range) values natively?
    pub full_range: bool,
}

impl fmt::Display for OperandSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, {}",
            if self.dynamic { "Dynamic" } else { "Static" },
            if self.full_range {
                "Full-range"
            } else {
                "Positive only"
            }
        )
    }
}

/// Relative cost of mapping an operand onto the PTC and programming its
/// devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingCost {
    /// SVD + phase decomposition + slow programming (MZI array).
    High,
    /// Direct intensity mapping but non-volatile programming (PCM).
    Medium,
    /// Direct high-speed modulation.
    Low,
}

/// Whether the core computes a full matrix product or only
/// a matrix-vector product per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationType {
    /// One-shot matrix-matrix multiplication.
    Mm,
    /// Matrix-vector multiplication.
    Mvm,
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct PtcDesign {
    /// Design name.
    pub name: &'static str,
    /// First operand support.
    pub operand1: OperandSupport,
    /// Second operand support.
    pub operand2: OperandSupport,
    /// Mapping and programming cost.
    pub mapping_cost: MappingCost,
    /// Operation granularity.
    pub operation: OperationType,
}

impl PtcDesign {
    /// Can the design run attention's dynamic MMs without stalls?
    pub fn supports_dynamic_mm(&self) -> bool {
        self.operand1.dynamic && self.operand2.dynamic
    }

    /// Can the design run full-range MMs without decomposition overhead?
    pub fn supports_full_range_without_overhead(&self) -> bool {
        self.operand1.full_range && self.operand2.full_range
    }
}

/// The five rows of Table I.
pub fn ptc_design_table() -> Vec<PtcDesign> {
    vec![
        PtcDesign {
            name: "MZI array [47]",
            operand1: OperandSupport {
                dynamic: false,
                full_range: true,
            },
            operand2: OperandSupport {
                dynamic: true,
                full_range: true,
            },
            mapping_cost: MappingCost::High,
            operation: OperationType::Mvm,
        },
        PtcDesign {
            name: "PCM crossbar [16]",
            operand1: OperandSupport {
                dynamic: false,
                full_range: false,
            },
            operand2: OperandSupport {
                dynamic: true,
                full_range: false,
            },
            mapping_cost: MappingCost::Medium,
            operation: OperationType::Mm,
        },
        PtcDesign {
            name: "MRR bank 1 [52]",
            operand1: OperandSupport {
                dynamic: true,
                full_range: true,
            },
            operand2: OperandSupport {
                dynamic: true,
                full_range: false,
            },
            mapping_cost: MappingCost::Low,
            operation: OperationType::Mvm,
        },
        PtcDesign {
            name: "MRR bank 2 [51]",
            operand1: OperandSupport {
                dynamic: true,
                full_range: false,
            },
            operand2: OperandSupport {
                dynamic: true,
                full_range: false,
            },
            mapping_cost: MappingCost::Low,
            operation: OperationType::Mvm,
        },
        PtcDesign {
            name: "DPTC (ours)",
            operand1: OperandSupport {
                dynamic: true,
                full_range: true,
            },
            operand2: OperandSupport {
                dynamic: true,
                full_range: true,
            },
            mapping_cost: MappingCost::Low,
            operation: OperationType::Mm,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_dptc_checks_every_box() {
        let table = ptc_design_table();
        let winners: Vec<&PtcDesign> = table
            .iter()
            .filter(|d| {
                d.supports_dynamic_mm()
                    && d.supports_full_range_without_overhead()
                    && d.mapping_cost == MappingCost::Low
                    && d.operation == OperationType::Mm
            })
            .collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].name, "DPTC (ours)");
    }

    #[test]
    fn mzi_fails_dynamic_mm() {
        let table = ptc_design_table();
        let mzi = table.iter().find(|d| d.name.starts_with("MZI")).unwrap();
        assert!(!mzi.supports_dynamic_mm());
        assert_eq!(mzi.mapping_cost, MappingCost::High);
    }

    #[test]
    fn mrr_banks_fail_full_range() {
        let table = ptc_design_table();
        for d in table.iter().filter(|d| d.name.starts_with("MRR")) {
            assert!(!d.supports_full_range_without_overhead());
            assert!(d.supports_dynamic_mm());
        }
    }

    #[test]
    fn display_formats_match_paper_wording() {
        let s = OperandSupport {
            dynamic: true,
            full_range: false,
        }
        .to_string();
        assert_eq!(s, "Dynamic, Positive only");
    }
}
