//! One-sided Jacobi singular value decomposition.
//!
//! The MZI-array baseline cannot load a weight matrix directly: it must
//! first factor each `k x k` tile as `U S V^T` and decompose `U`/`V` into
//! MZI phase settings (paper Section II-C). The paper measures ~1.5 ms per
//! 12x12 tile on a CPU; we implement the SVD here so the mapping cost is a
//! *measured* quantity of this repository, not a citation (DESIGN.md,
//! Substitution 5).

/// Result of a singular value decomposition `A = U * diag(S) * V^T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, row-major `m x n`.
    pub u: Vec<f64>,
    /// Singular values, descending, length `n`.
    pub s: Vec<f64>,
    /// Right singular vectors, row-major `n x n` (**not** transposed).
    pub v: Vec<f64>,
    /// Number of Jacobi sweeps used.
    pub sweeps: usize,
}

/// Computes the SVD of a row-major `m x n` matrix (`m >= n`) by one-sided
/// Jacobi rotations (Hestenes). Converges quadratically; suitable for the
/// small tiles (e.g. 12x12) the MZI mapping needs.
///
/// # Panics
///
/// Panics if `a.len() != m * n`, if `m < n`, or if `n == 0`.
///
/// ```
/// use lt_baselines::jacobi_svd;
/// let a = vec![3.0, 0.0, 0.0, -2.0]; // diag(3, -2)
/// let svd = jacobi_svd(&a, 2, 2);
/// assert!((svd.s[0] - 3.0).abs() < 1e-12);
/// assert!((svd.s[1] - 2.0).abs() < 1e-12);
/// ```
pub fn jacobi_svd(a: &[f64], m: usize, n: usize) -> Svd {
    assert!(n > 0, "matrix must be non-empty");
    assert!(m >= n, "one-sided Jacobi needs m >= n (transpose first)");
    assert_eq!(a.len(), m * n, "matrix length must equal m * n");

    // Work on the columns of A; accumulate V as rotations compose.
    let mut u = a.to_vec(); // becomes U * diag(S)
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let eps = 1e-14;
    let max_sweeps = 60;
    let mut sweeps = 0;
    for sweep in 0..max_sweeps {
        sweeps = sweep + 1;
        let mut off = 0.0f64;
        for p in 0..n - 1 {
            for q in p + 1..n {
                // Compute the 2x2 Gram elements of columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let x = u[i * n + p];
                    let y = u[i * n + q];
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                // Jacobi rotation zeroing the (p, q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let x = u[i * n + p];
                    let y = u[i * n + q];
                    u[i * n + p] = c * x - s * y;
                    u[i * n + q] = s * x + c * y;
                }
                for i in 0..n {
                    let x = v[i * n + p];
                    let y = v[i * n + q];
                    v[i * n + p] = c * x - s * y;
                    v[i * n + q] = s * x + c * y;
                }
            }
        }
        if off < 1e-12 {
            break;
        }
    }

    // Column norms are the singular values; normalize U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = vec![0.0; n];
    for (j, sj) in s.iter_mut().enumerate() {
        let norm = (0..m)
            .map(|i| u[i * n + j] * u[i * n + j])
            .sum::<f64>()
            .sqrt();
        *sj = norm;
    }
    order.sort_by(|&i, &j| s[j].partial_cmp(&s[i]).unwrap());

    let mut u_sorted = vec![0.0; m * n];
    let mut v_sorted = vec![0.0; n * n];
    let mut s_sorted = vec![0.0; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        s_sorted[new_j] = s[old_j];
        let inv = if s[old_j] > 0.0 { 1.0 / s[old_j] } else { 0.0 };
        for i in 0..m {
            u_sorted[i * n + new_j] = u[i * n + old_j] * inv;
        }
        for i in 0..n {
            v_sorted[i * n + new_j] = v[i * n + old_j];
        }
    }

    Svd {
        u: u_sorted,
        s: s_sorted,
        v: v_sorted,
        sweeps,
    }
}

/// Reconstructs `U * diag(S) * V^T` (for verification and tests).
pub fn reconstruct(svd: &Svd, m: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..n {
                acc += svd.u[i * n + l] * svd.s[l] * svd.v[j * n + l];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Measures the wall-clock time of one `k x k` SVD (the per-tile mapping
/// cost of the MZI baseline), in seconds.
pub fn measure_mapping_seconds(k: usize, trials: usize) -> f64 {
    use std::time::Instant;
    // A deterministic, well-conditioned test matrix.
    let a: Vec<f64> = (0..k * k)
        .map(|i| ((i * 2654435761 % 1000) as f64 / 500.0) - 1.0)
        .collect();
    let start = Instant::now();
    for _ in 0..trials.max(1) {
        std::hint::black_box(jacobi_svd(std::hint::black_box(&a), k, k));
    }
    start.elapsed().as_secs_f64() / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn pseudo_random(mn: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..mn)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn reconstructs_random_square_matrices() {
        for seed in 1..=5 {
            let a = pseudo_random(12 * 12, seed);
            let svd = jacobi_svd(&a, 12, 12);
            let back = reconstruct(&svd, 12, 12);
            assert!(
                max_abs_diff(&a, &back) < 1e-9,
                "seed {seed}: reconstruction error {}",
                max_abs_diff(&a, &back)
            );
        }
    }

    #[test]
    fn reconstructs_tall_matrices() {
        let a = pseudo_random(20 * 8, 9);
        let svd = jacobi_svd(&a, 20, 8);
        let back = reconstruct(&svd, 20, 8);
        assert!(max_abs_diff(&a, &back) < 1e-9);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = pseudo_random(12 * 12, 3);
        let svd = jacobi_svd(&a, 12, 12);
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1]));
        assert!(svd.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_and_v_are_orthonormal() {
        let a = pseudo_random(12 * 12, 4);
        let svd = jacobi_svd(&a, 12, 12);
        let n = 12;
        for p in 0..n {
            for q in 0..n {
                let dot_u: f64 = (0..n).map(|i| svd.u[i * n + p] * svd.u[i * n + q]).sum();
                let dot_v: f64 = (0..n).map(|i| svd.v[i * n + p] * svd.v[i * n + q]).sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((dot_u - expect).abs() < 1e-9, "U^T U [{p},{q}] = {dot_u}");
                assert!((dot_v - expect).abs() < 1e-9, "V^T V [{p},{q}] = {dot_v}");
            }
        }
    }

    #[test]
    fn rank_deficient_matrix_handled() {
        // Two identical columns -> one zero singular value.
        let mut a = pseudo_random(6 * 3, 5);
        for i in 0..6 {
            a[i * 3 + 2] = a[i * 3 + 1];
        }
        let svd = jacobi_svd(&a, 6, 3);
        assert!(svd.s[2] < 1e-9, "smallest singular value {}", svd.s[2]);
        let back = reconstruct(&svd, 6, 3);
        assert!(max_abs_diff(&a, &back) < 1e-9);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = vec![5.0, 0.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 1.0];
        let svd = jacobi_svd(&a, 3, 3);
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        assert!((svd.s[1] - 4.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mapping_measurement_is_positive_and_finite() {
        let t = measure_mapping_seconds(12, 5);
        assert!(t > 0.0 && t < 1.0, "12x12 SVD took {t} s");
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn wide_matrices_rejected() {
        jacobi_svd(&[1.0, 2.0], 1, 2);
    }
}
