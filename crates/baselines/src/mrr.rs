//! The MRR-bank baseline accelerator (\[52\], paper Section V-C).
//!
//! A weight-static incoherent design: each `k x k` bank of microring
//! resonators holds one weight block as intensity transmissions and
//! multiplies streamed input chunks (MVM). Its two structural handicaps
//! versus DPTC, both modeled here:
//!
//! 1. **Locking power** — every ring burns static locking power for the
//!    whole execution; the total locking energy scales with the total
//!    computation `m*d*n` and cannot be amortized (Fig. 11's dominant
//!    `op1-mod` bar).
//! 2. **Non-negative operands** — intensity modulation cannot encode
//!    signs, so full-range GEMMs decompose into
//!    `(X+ - X-)(Y+ - Y-)` and execute as **4 passes** with extra
//!    accumulation (the paper's ">2-4x hardware cost").

use crate::BaselineReport;
use lt_photonics::constants::PTC_CLOCK_GHZ;
use lt_photonics::devices::{
    Adc, Dac, MachZehnderModulator, MicroringResonator, Photodetector, Tia,
};
use lt_photonics::units::{GigaHertz, MilliJoules, MilliWatts, Milliseconds};
use lt_workloads::{GemmOp, Module, TransformerConfig};

/// Full-range decomposition passes for signed x signed operands.
pub const FULL_RANGE_PASSES: u64 = 4;

/// Average per-ring locking power (half the 1.2 mW/0.5-FSR worst case,
/// assuming uniformly distributed weight detunings).
pub const AVG_LOCKING_MW: f64 = 0.6;

/// Chip area per bank *system* (bank + converters + buffers + control),
/// mm^2 — used to area-match against LT-B as the paper does.
pub const BANK_SYSTEM_MM2: f64 = 2.0;

/// SRAM traffic energy per operand byte (same hierarchy class as LT-B).
const OPERAND_PJ_PER_BYTE: f64 = 1.5;
/// HBM energy per byte.
const HBM_PJ_PER_BYTE: f64 = 40.0;

/// The MRR-bank accelerator model.
///
/// ```
/// use lt_baselines::MrrAccelerator;
/// let mrr = MrrAccelerator::paper_baseline(4);
/// assert_eq!(mrr.banks(), 30); // area-matched to LT-B's ~60 mm^2
/// ```
#[derive(Debug, Clone)]
pub struct MrrAccelerator {
    k: usize,
    banks: usize,
    bits: u32,
    clock: GigaHertz,
    dac: Dac,
    adc: Adc,
    tia: Tia,
    pd: Photodetector,
    mrr: MicroringResonator,
    input_mod: MachZehnderModulator,
}

impl MrrAccelerator {
    /// The paper's baseline: bank size 12, area-matched to LT-B
    /// (~60.3 mm^2 => 30 bank systems), at the given precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn paper_baseline(bits: u32) -> Self {
        Self::area_matched(12, 60.3, bits)
    }

    /// Builds an accelerator with as many bank systems as fit in
    /// `target_mm2`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, the target area fits no banks, or `bits` is out
    /// of range.
    pub fn area_matched(k: usize, target_mm2: f64, bits: u32) -> Self {
        assert!(k > 0, "bank size must be positive");
        assert!((2..=16).contains(&bits), "precision {bits} out of range");
        let banks = (target_mm2 / BANK_SYSTEM_MM2).floor() as usize;
        assert!(banks > 0, "target area {target_mm2} mm^2 fits no banks");
        MrrAccelerator {
            k,
            banks,
            bits,
            clock: GigaHertz(PTC_CLOCK_GHZ),
            dac: Dac::paper(),
            adc: Adc::paper(),
            tia: Tia::paper(),
            pd: Photodetector::paper(),
            mrr: MicroringResonator::paper(),
            input_mod: MachZehnderModulator::paper(),
        }
    }

    /// Bank (weight block) size `k`.
    pub fn bank_size(&self) -> usize {
        self.k
    }

    /// The numeric [`lt_core::ComputeBackend`] matching this
    /// accelerator's precision (4-pass non-negative decomposition), for
    /// accuracy experiments.
    pub fn compute_backend(&self) -> crate::backend::MrrBackend {
        crate::backend::MrrBackend::new(self.bits)
    }

    /// Number of bank systems.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Useful MACs per cycle after the 4-pass decomposition.
    pub fn effective_macs_per_cycle(&self) -> f64 {
        (self.banks * self.k * self.k) as f64 / FULL_RANGE_PASSES as f64
    }

    /// Simulates one GEMM (weights = the `k x n` right operand held in
    /// rings; inputs streamed).
    pub fn run_op(&self, op: &GemmOp) -> BaselineReport {
        let k = self.k as u64;
        let (m, d, n) = (op.m as u64, op.k as u64, op.n as u64);
        let count = op.count as u64;
        let period = self.clock.period();

        let blocks = d.div_ceil(k) * n.div_ceil(k);
        let bank_invocations = blocks * m * FULL_RANGE_PASSES * count;
        let cycles = bank_invocations.div_ceil(self.banks as u64);
        let time = Milliseconds(cycles as f64 * period.value() * 1e-9);

        // Locking: every ring of every bank, for the whole execution.
        let lock_w = self.banks as f64 * (self.k * self.k) as f64 * AVG_LOCKING_MW / 1e3;
        let op1_mod = MilliJoules(lock_w * time.value());

        // Weight writes: W+ / W- sub-banks, rewritten per execution
        // (cheap for static weights, unavoidable for attention operands).
        let e_dac = self.dac.scaled_power(self.bits, self.clock) * period;
        let e_tune = self.mrr.tuning_power * period;
        let weight_writes = (d * n * 2 * count) as f64;
        let op1_dac = MilliJoules(weight_writes * (e_dac.value() + e_tune.value()) * 1e-9);

        // Input streaming: each input chunk re-modulated per column-block
        // and per decomposition pass.
        let e_mod = self.input_mod.tuning_power() * period;
        let input_loads = (m * d * n.div_ceil(k) * FULL_RANGE_PASSES * count) as f64;
        let op2_encode = MilliJoules(input_loads * (e_dac.value() + e_mod.value()) * 1e-9);

        // Detection + conversion: every pass produces partial outputs that
        // must be digitized (no analog accumulation in a WS design).
        let e_pd = self.pd.power * period;
        let e_tia = self.tia.power * period;
        let e_adc = self.adc.scaled_power(self.bits, self.clock) * period;
        let outputs = (m * n * d.div_ceil(k) * FULL_RANGE_PASSES * count) as f64;
        let det = MilliJoules(outputs * (e_pd.value() + e_tia.value()) * 1e-9);
        let adc = MilliJoules(outputs * e_adc.value() * 1e-9);

        // Incoherent link budget is short; laser is minor (Fig. 11).
        let laser_w = self.laser_power().value() / 1e3;
        let laser = MilliJoules(laser_w * time.value());

        // Data movement: inputs through SRAM, weights from HBM once,
        // outputs written back at accumulator width.
        let byte = self.bits as f64 / 8.0;
        let dm_pj = input_loads * byte * OPERAND_PJ_PER_BYTE
            + (d * n * count) as f64 * byte * HBM_PJ_PER_BYTE
            + (m * n * count) as f64 * 2.0 * OPERAND_PJ_PER_BYTE;
        let data_movement = MilliJoules(dm_pj * 1e-9);

        let energy = op1_mod + op1_dac + op2_encode + det + adc + laser + data_movement;
        BaselineReport {
            energy,
            latency: time,
            op1_mod,
            op1_dac,
            op2_encode,
            det,
            adc,
            laser,
            data_movement,
            reconfig_latency: Milliseconds(0.0),
        }
    }

    /// Simulates a trace.
    pub fn run_trace(&self, ops: &[GemmOp]) -> BaselineReport {
        let mut total = BaselineReport::default();
        for op in ops {
            total.merge(&self.run_op(op));
        }
        total
    }

    /// Simulates a model, split by module as in Table V.
    pub fn run_model(&self, model: &TransformerConfig) -> MrrModelReport {
        let mut mha = BaselineReport::default();
        let mut ffn = BaselineReport::default();
        let mut other = BaselineReport::default();
        for op in model.gemm_trace() {
            let r = self.run_op(&op);
            match op.module() {
                Module::Mha => mha.merge(&r),
                Module::Ffn => ffn.merge(&r),
                Module::Other => other.merge(&r),
            }
        }
        let mut all = BaselineReport::default();
        all.merge(&mha);
        all.merge(&ffn);
        all.merge(&other);
        MrrModelReport {
            mha,
            ffn,
            other,
            all,
        }
    }

    /// Electrical laser power (short incoherent link; sensitivity-limited).
    pub fn laser_power(&self) -> MilliWatts {
        let sens_per_ch = self.pd.sensitivity().value() / self.k as f64;
        let loss_db = 12.0; // modulator + ring + bus + margin
        let precision = 2f64.powi(self.bits as i32 - 4);
        let optical =
            (self.banks * self.k) as f64 * sens_per_ch * 10f64.powf(loss_db / 10.0) * precision;
        MilliWatts(optical / 0.2)
    }
}

/// Per-module results, mirroring `lt_arch::ModelReport`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MrrModelReport {
    /// Dynamic attention products only.
    pub mha: BaselineReport,
    /// FFN linears only.
    pub ffn: BaselineReport,
    /// Everything else.
    pub other: BaselineReport,
    /// Total.
    pub all: BaselineReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_t_4bit_matches_table_v_bands() {
        // Paper Table V (MRR, 4-bit, DeiT-T): MHA 0.17 mJ / 0.03 ms,
        // FFN 0.89 mJ / 0.14 ms, All 1.54 mJ / 0.24 ms.
        let mrr = MrrAccelerator::paper_baseline(4);
        let r = mrr.run_model(&TransformerConfig::deit_tiny());
        let mha = r.mha.energy.value();
        let ffn = r.ffn.energy.value();
        let all = r.all.energy.value();
        assert!((0.07..0.4).contains(&mha), "MHA {mha} mJ");
        assert!((0.4..1.8).contains(&ffn), "FFN {ffn} mJ");
        assert!((0.7..3.0).contains(&all), "All {all} mJ");
        assert!(
            (0.015..0.06).contains(&r.mha.latency.value()),
            "MHA {} ms",
            r.mha.latency.value()
        );
        assert!(
            (0.07..0.28).contains(&r.ffn.latency.value()),
            "FFN {} ms",
            r.ffn.latency.value()
        );
        assert!(
            (0.12..0.48).contains(&r.all.latency.value()),
            "All {} ms",
            r.all.latency.value()
        );
    }

    #[test]
    fn locking_dominates_attention_energy() {
        // Fig. 11: op1-mod (locking) > 40% of the MRR attention energy.
        let mrr = MrrAccelerator::paper_baseline(4);
        let qk = GemmOp::new(lt_workloads::OpKind::AttnQk, 197, 64, 197, 36);
        let r = mrr.run_op(&qk);
        let share = r.op1_mod.value() / r.energy.value();
        assert!(share > 0.30, "locking share {share}");
    }

    #[test]
    fn decomposition_quadruples_bank_work() {
        let mrr = MrrAccelerator::paper_baseline(4);
        let macs_per_cycle = mrr.effective_macs_per_cycle();
        assert!((macs_per_cycle - 30.0 * 144.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn eight_bit_increases_energy_modestly() {
        // MRR has no laser explosion; 8-bit mostly raises DAC/ADC energy.
        // Paper: 1.54 -> 3.20 mJ (~2.1x).
        let m4 = MrrAccelerator::paper_baseline(4)
            .run_model(&TransformerConfig::deit_tiny())
            .all
            .energy
            .value();
        let m8 = MrrAccelerator::paper_baseline(8)
            .run_model(&TransformerConfig::deit_tiny())
            .all
            .energy
            .value();
        let ratio = m8 / m4;
        assert!((1.3..3.5).contains(&ratio), "8/4-bit ratio {ratio}");
    }

    #[test]
    fn latency_is_independent_of_precision() {
        let m4 = MrrAccelerator::paper_baseline(4).run_model(&TransformerConfig::deit_tiny());
        let m8 = MrrAccelerator::paper_baseline(8).run_model(&TransformerConfig::deit_tiny());
        assert!((m4.all.latency.value() - m8.all.latency.value()).abs() < 1e-12);
    }

    #[test]
    fn modules_sum_to_all() {
        let r = MrrAccelerator::paper_baseline(4).run_model(&TransformerConfig::deit_tiny());
        let sum = r.mha.energy.value() + r.ffn.energy.value() + r.other.energy.value();
        assert!((sum - r.all.energy.value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fits no banks")]
    fn tiny_area_rejected() {
        MrrAccelerator::area_matched(12, 0.5, 4);
    }
}
