//! A fixed-size worker pool over `std::sync::mpsc` — the `std`-only
//! substitute for `rayon` (the build container has no crates.io access).
//!
//! Jobs are `'static` closures; workers pull them from one shared
//! channel, so an idle worker always takes the next job (work stealing
//! degenerates to a single shared queue, which is optimal for the
//! coarse, similar-cost row-block jobs the runtime submits).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool.
///
/// Dropping the pool closes the job channel and joins every worker;
/// jobs already submitted still run to completion.
///
/// ```
/// use lt_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..32 {
///     let hits = Arc::clone(&hits);
///     pool.execute(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// drop(pool); // joins: all 32 jobs have run
/// assert_eq!(hits.load(Ordering::SeqCst), 32);
/// ```
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    panicked: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panicked = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("lt-runtime-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &panicked))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            panicked,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs that panicked so far (their panics are contained
    /// so one bad job cannot kill a worker).
    pub fn panicked_jobs(&self) -> usize {
        self.panicked.load(Ordering::SeqCst)
    }

    /// Submits a job. Jobs run in submission order per worker pickup;
    /// completion order is unspecified.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("all workers exited");
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, panicked: &AtomicUsize) {
    loop {
        // Hold the lock only while popping, never while running the job.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // a peer panicked while popping; shut down
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panicked.fetch_add(1, Ordering::SeqCst);
                }
            }
            Err(_) => return, // channel closed: pool dropped
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads())
            .field("panicked_jobs", &self.panicked_jobs())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the channel; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn runs_jobs_on_multiple_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let (tx, rx) = channel();
        for i in 0..100u32 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i * i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<u32> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("job goes boom"));
        let (tx, rx) = channel();
        pool.execute(move || tx.send(1u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 1, "pool still serves jobs");
        drop(pool);
    }

    #[test]
    fn drop_joins_after_draining() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}
