//! [`BatchQueue`]: FIFO coalescing of concurrent requests into batches.
//!
//! The accelerator amortizes per-layer weight loading (and DAC setup)
//! across a batch of inputs; the serving runtime mirrors that by letting
//! concurrent submitters enqueue requests that a consumer drains as
//! FIFO batches of bounded size. Every submission gets a monotonically
//! increasing *ticket*; batches always contain consecutive tickets, so
//! no request can overtake another or starve.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A blocking multi-producer batch queue.
///
/// ```
/// use lt_runtime::BatchQueue;
///
/// let queue = BatchQueue::new(3);
/// for word in ["a", "b", "c", "d", "e"] {
///     queue.submit(word);
/// }
/// queue.close();
/// let first = queue.next_batch().unwrap();
/// assert_eq!(first, vec![(0, "a"), (1, "b"), (2, "c")], "FIFO, capped at 3");
/// let second = queue.next_batch().unwrap();
/// assert_eq!(second, vec![(3, "d"), (4, "e")]);
/// assert!(queue.next_batch().is_none(), "closed and drained");
/// ```
#[derive(Debug)]
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    max_batch: usize,
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<(u64, T)>,
    next_ticket: u64,
    closed: bool,
}

impl<T> BatchQueue<T> {
    /// Creates a queue whose batches hold at most `max_batch` requests.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "batches must hold at least one request");
        BatchQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                next_ticket: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            max_batch,
        }
    }

    /// Maximum requests per batch.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Enqueues a request and returns its ticket. Tickets are assigned
    /// in submission order starting from zero and define the order in
    /// which requests are handed out.
    ///
    /// # Panics
    ///
    /// Panics if the queue is closed.
    pub fn submit(&self, item: T) -> u64 {
        let mut inner = self.inner.lock().expect("queue poisoned");
        assert!(!inner.closed, "submit on a closed BatchQueue");
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.queue.push_back((ticket, item));
        drop(inner);
        self.ready.notify_one();
        ticket
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").queue.len()
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending requests still drain, new submissions
    /// panic, and [`BatchQueue::next_batch`] returns `None` once empty.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`BatchQueue::close`] has been called. A non-blocking
    /// consumer polling [`BatchQueue::try_next_batch`] terminates on
    /// `is_closed() && try_next_batch().is_none()`; blocking consumers
    /// should just use [`BatchQueue::next_batch`], whose `None` already
    /// means closed-and-drained.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Blocks until at least one request is waiting (or the queue is
    /// closed and drained), then removes and returns up to
    /// [`BatchQueue::max_batch`] requests in ticket order. Returns
    /// `None` only after [`BatchQueue::close`] with nothing left.
    pub fn next_batch(&self) -> Option<Vec<(u64, T)>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.queue.is_empty() {
                let take = self.max_batch.min(inner.queue.len());
                return Some(inner.queue.drain(..take).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// As [`BatchQueue::next_batch`] but never blocks: returns `None`
    /// when nothing is waiting *right now* (which does not imply the
    /// queue is closed — check [`BatchQueue::is_closed`] to terminate a
    /// polling loop).
    pub fn try_next_batch(&self) -> Option<Vec<(u64, T)>> {
        self.try_take(self.max_batch)
    }

    /// Non-blocking bounded drain: removes and returns up to `limit`
    /// requests in ticket order (ignoring [`BatchQueue::max_batch`]), or
    /// `None` if nothing is waiting. This is the admission primitive of
    /// a *continuous-batching* consumer, which tops up however many
    /// execution slots it has free between steps of already-running
    /// work, rather than draining fixed-size batches.
    pub fn try_take(&self, limit: usize) -> Option<Vec<(u64, T)>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.queue.is_empty() || limit == 0 {
            return None;
        }
        let take = limit.min(inner.queue.len());
        Some(inner.queue.drain(..take).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn batches_are_fifo_and_bounded() {
        let q = BatchQueue::new(4);
        for i in 0..10 {
            assert_eq!(q.submit(i), i as u64);
        }
        q.close();
        let mut sizes = Vec::new();
        let mut tickets = Vec::new();
        while let Some(batch) = q.next_batch() {
            sizes.push(batch.len());
            tickets.extend(batch.iter().map(|&(t, _)| t));
        }
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(tickets, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_submitters_never_reorder_or_lose_requests() {
        let q = Arc::new(BatchQueue::new(3));
        let submitters: Vec<_> = (0..4)
            .map(|s| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        q.submit((s, i));
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut drained = Vec::new();
                while let Some(batch) = q.next_batch() {
                    assert!(batch.len() <= 3);
                    drained.extend(batch);
                }
                drained
            })
        };
        for s in submitters {
            s.join().unwrap();
        }
        q.close();
        let drained = consumer.join().unwrap();
        assert_eq!(drained.len(), 100, "every request served exactly once");
        // Global FIFO: tickets strictly increase across batches.
        for pair in drained.windows(2) {
            assert!(pair[0].0 < pair[1].0, "tickets must stay ordered");
        }
        // Per-submitter order preserved (fairness: no overtaking).
        for s in 0..4u32 {
            let seq: Vec<u32> = drained
                .iter()
                .filter(|&&(_, (owner, _))| owner == s)
                .map(|&(_, (_, i))| i)
                .collect();
            assert_eq!(seq, (0..25).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn try_take_drains_up_to_the_limit_in_ticket_order() {
        let q = BatchQueue::new(2); // max_batch deliberately smaller than limit
        for i in 0..5u8 {
            q.submit(i);
        }
        assert!(q.try_take(0).is_none(), "zero slots: nothing to admit");
        assert_eq!(q.try_take(3).unwrap(), vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(q.try_take(10).unwrap(), vec![(3, 3), (4, 4)]);
        assert!(q.try_take(1).is_none(), "drained");
    }

    #[test]
    fn try_next_batch_never_blocks_and_close_is_observable() {
        let q: BatchQueue<u8> = BatchQueue::new(2);
        assert!(q.try_next_batch().is_none());
        assert!(!q.is_closed(), "open queue: None just means empty");
        q.submit(1);
        assert_eq!(q.try_next_batch().unwrap(), vec![(0, 1)]);
        assert!(q.is_empty());
        q.close();
        assert!(q.is_closed() && q.try_next_batch().is_none());
    }

    #[test]
    #[should_panic(expected = "closed BatchQueue")]
    fn submitting_after_close_panics() {
        let q = BatchQueue::new(1);
        q.close();
        q.submit(0u8);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_size_rejected() {
        let _ = BatchQueue::<u8>::new(0);
    }
}
