//! [`BatchQueue`]: SLO-class-aware coalescing of concurrent requests
//! into batches.
//!
//! The accelerator amortizes per-layer weight loading (and DAC setup)
//! across a batch of inputs; the serving runtime mirrors that by letting
//! concurrent submitters enqueue requests that a consumer drains as
//! batches of bounded size. Every submission gets a monotonically
//! increasing *ticket*; requests are handed out in `(class rank,
//! ticket)` order — strictly FIFO within an SLO class, interactive
//! classes before batch classes across them — so admission order is a
//! pure function of what was submitted, never of which consumer thread
//! drained it. [`BatchQueue::submit`] uses [`SloClass::Standard`] for
//! every request, which degenerates to the exact global FIFO the queue
//! always had.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The service-level class of a request: its admission priority when
/// the serving layer cannot start everything at once.
///
/// Classes order admission *between* requests of different classes;
/// within one class admission is strictly ticket order (submission
/// order), so the drain order of any submitted multiset is
/// deterministic — the tie-break [`BatchQueue::try_take`] documents and
/// `tests` below enforce. A class says nothing about *deadlines*; the
/// serving frontend layers deadline checks on top (see
/// `lt_nn::serve::lifecycle`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SloClass {
    /// Latency-sensitive traffic: admitted before everything else.
    Interactive,
    /// The default class — plain FIFO among themselves, after any
    /// waiting interactive requests.
    #[default]
    Standard,
    /// Throughput traffic with no latency expectation: admitted only
    /// when nothing of a higher class waits.
    Batch,
}

impl SloClass {
    /// The admission rank (lower admits first).
    pub fn rank(self) -> u8 {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// Short display name (`interactive` / `standard` / `batch`).
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }
}

/// A blocking multi-producer batch queue.
///
/// ```
/// use lt_runtime::BatchQueue;
///
/// let queue = BatchQueue::new(3);
/// for word in ["a", "b", "c", "d", "e"] {
///     queue.submit(word);
/// }
/// queue.close();
/// let first = queue.next_batch().unwrap();
/// assert_eq!(first, vec![(0, "a"), (1, "b"), (2, "c")], "FIFO, capped at 3");
/// let second = queue.next_batch().unwrap();
/// assert_eq!(second, vec![(3, "d"), (4, "e")]);
/// assert!(queue.next_batch().is_none(), "closed and drained");
/// ```
#[derive(Debug)]
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    max_batch: usize,
}

#[derive(Debug)]
struct Inner<T> {
    /// Waiting requests kept sorted by `(class rank, ticket)`. Tickets
    /// are globally monotonic, so within one rank the order is exactly
    /// submission order.
    queue: VecDeque<(u8, u64, T)>,
    next_ticket: u64,
    closed: bool,
}

impl<T> BatchQueue<T> {
    /// Creates a queue whose batches hold at most `max_batch` requests.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "batches must hold at least one request");
        BatchQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                next_ticket: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            max_batch,
        }
    }

    /// Maximum requests per batch.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Enqueues a request at [`SloClass::Standard`] and returns its
    /// ticket. Tickets are assigned in submission order starting from
    /// zero; among requests of the same class they define the order in
    /// which requests are handed out, so a queue fed only through
    /// `submit` is a plain global FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the queue is closed.
    pub fn submit(&self, item: T) -> u64 {
        self.submit_with_class(item, SloClass::Standard)
    }

    /// Enqueues a request under an explicit SLO class and returns its
    /// ticket. The request is handed out after every waiting request of
    /// a strictly higher class (lower [`SloClass::rank`]) and after
    /// earlier-ticketed requests of its own class, regardless of which
    /// consumer drains the queue or how many threads submit.
    ///
    /// # Panics
    ///
    /// Panics if the queue is closed.
    pub fn submit_with_class(&self, item: T, class: SloClass) -> u64 {
        let rank = class.rank();
        let mut inner = self.inner.lock().expect("queue poisoned");
        assert!(!inner.closed, "submit on a closed BatchQueue");
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        // Insert before the first waiting entry of a strictly greater
        // rank. The new ticket is larger than every ticket already
        // queued, so scanning from the back and stopping at the first
        // entry with `rank <= new rank` preserves the (rank, ticket)
        // sort without comparing tickets.
        let at = inner
            .queue
            .iter()
            .rposition(|&(r, _, _)| r <= rank)
            .map_or(0, |i| i + 1);
        inner.queue.insert(at, (rank, ticket, item));
        drop(inner);
        self.ready.notify_one();
        ticket
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").queue.len()
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending requests still drain, new submissions
    /// panic, and [`BatchQueue::next_batch`] returns `None` once empty.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`BatchQueue::close`] has been called. A non-blocking
    /// consumer polling [`BatchQueue::try_next_batch`] terminates on
    /// `is_closed() && try_next_batch().is_none()`; blocking consumers
    /// should just use [`BatchQueue::next_batch`], whose `None` already
    /// means closed-and-drained.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Blocks until at least one request is waiting (or the queue is
    /// closed and drained), then removes and returns up to
    /// [`BatchQueue::max_batch`] requests in `(class rank, ticket)`
    /// order — ticket order within a class, higher classes first (see
    /// [`BatchQueue::try_take`] for the tie-break contract). Returns
    /// `None` only after [`BatchQueue::close`] with nothing left.
    pub fn next_batch(&self) -> Option<Vec<(u64, T)>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.queue.is_empty() {
                let take = self.max_batch.min(inner.queue.len());
                return Some(inner.queue.drain(..take).map(|(_, t, x)| (t, x)).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// As [`BatchQueue::next_batch`] but never blocks: returns `None`
    /// when nothing is waiting *right now* (which does not imply the
    /// queue is closed — check [`BatchQueue::is_closed`] to terminate a
    /// polling loop).
    pub fn try_next_batch(&self) -> Option<Vec<(u64, T)>> {
        self.try_take(self.max_batch)
    }

    /// Non-blocking bounded drain: removes and returns up to `limit`
    /// requests (ignoring [`BatchQueue::max_batch`]), or `None` if
    /// nothing is waiting. This is the admission primitive of a
    /// *continuous-batching* consumer, which tops up however many
    /// execution slots it has free between steps of already-running
    /// work, rather than draining fixed-size batches.
    ///
    /// # Admission order (the tie-break contract)
    ///
    /// Requests come out sorted by `(class rank, ticket)`:
    ///
    /// 1. every waiting [`SloClass::Interactive`] request before every
    ///    [`SloClass::Standard`] one, which precede every
    ///    [`SloClass::Batch`] one;
    /// 2. **within one class, strictly ascending ticket order** — i.e.
    ///    submission order.
    ///
    /// Because tickets are assigned under the queue lock, the drain
    /// order of any set of waiting requests is a pure function of what
    /// was submitted — never of which consumer thread drained it or of
    /// `LT_THREADS`. Priority admission is therefore deterministic:
    /// replaying the same submissions yields the same admission order.
    pub fn try_take(&self, limit: usize) -> Option<Vec<(u64, T)>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.queue.is_empty() || limit == 0 {
            return None;
        }
        let take = limit.min(inner.queue.len());
        Some(inner.queue.drain(..take).map(|(_, t, x)| (t, x)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn batches_are_fifo_and_bounded() {
        let q = BatchQueue::new(4);
        for i in 0..10 {
            assert_eq!(q.submit(i), i as u64);
        }
        q.close();
        let mut sizes = Vec::new();
        let mut tickets = Vec::new();
        while let Some(batch) = q.next_batch() {
            sizes.push(batch.len());
            tickets.extend(batch.iter().map(|&(t, _)| t));
        }
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(tickets, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_submitters_never_reorder_or_lose_requests() {
        let q = Arc::new(BatchQueue::new(3));
        let submitters: Vec<_> = (0..4)
            .map(|s| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        q.submit((s, i));
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut drained = Vec::new();
                while let Some(batch) = q.next_batch() {
                    assert!(batch.len() <= 3);
                    drained.extend(batch);
                }
                drained
            })
        };
        for s in submitters {
            s.join().unwrap();
        }
        q.close();
        let drained = consumer.join().unwrap();
        assert_eq!(drained.len(), 100, "every request served exactly once");
        // Global FIFO: tickets strictly increase across batches.
        for pair in drained.windows(2) {
            assert!(pair[0].0 < pair[1].0, "tickets must stay ordered");
        }
        // Per-submitter order preserved (fairness: no overtaking).
        for s in 0..4u32 {
            let seq: Vec<u32> = drained
                .iter()
                .filter(|&&(_, (owner, _))| owner == s)
                .map(|&(_, (_, i))| i)
                .collect();
            assert_eq!(seq, (0..25).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn try_take_drains_up_to_the_limit_in_ticket_order() {
        let q = BatchQueue::new(2); // max_batch deliberately smaller than limit
        for i in 0..5u8 {
            q.submit(i);
        }
        assert!(q.try_take(0).is_none(), "zero slots: nothing to admit");
        assert_eq!(q.try_take(3).unwrap(), vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(q.try_take(10).unwrap(), vec![(3, 3), (4, 4)]);
        assert!(q.try_take(1).is_none(), "drained");
    }

    #[test]
    fn try_next_batch_never_blocks_and_close_is_observable() {
        let q: BatchQueue<u8> = BatchQueue::new(2);
        assert!(q.try_next_batch().is_none());
        assert!(!q.is_closed(), "open queue: None just means empty");
        q.submit(1);
        assert_eq!(q.try_next_batch().unwrap(), vec![(0, 1)]);
        assert!(q.is_empty());
        q.close();
        assert!(q.is_closed() && q.try_next_batch().is_none());
    }

    #[test]
    fn classes_admit_by_rank_then_ticket() {
        let q = BatchQueue::new(8);
        let t_batch = q.submit_with_class("batch-0", SloClass::Batch);
        let t_std = q.submit_with_class("std-1", SloClass::Standard);
        let t_int0 = q.submit_with_class("int-2", SloClass::Interactive);
        let t_int1 = q.submit_with_class("int-3", SloClass::Interactive);
        assert_eq!((t_batch, t_std, t_int0, t_int1), (0, 1, 2, 3));
        assert_eq!(
            q.try_take(10).unwrap(),
            vec![(2, "int-2"), (3, "int-3"), (1, "std-1"), (0, "batch-0")],
            "interactive before standard before batch; ticket order within class"
        );
    }

    #[test]
    fn tie_break_within_class_is_ticket_order() {
        // The try_take contract: same-class requests never reorder, no
        // matter how drains are sliced. Interleave submissions of two
        // classes and drain one request at a time.
        let q = BatchQueue::new(1);
        for i in 0..6u64 {
            let class = if i % 2 == 0 {
                SloClass::Batch
            } else {
                SloClass::Interactive
            };
            q.submit_with_class((class, i), class);
        }
        let mut order = Vec::new();
        while let Some(mut one) = q.try_take(1) {
            order.push(one.remove(0));
        }
        assert_eq!(
            order,
            vec![
                (1, (SloClass::Interactive, 1)),
                (3, (SloClass::Interactive, 3)),
                (5, (SloClass::Interactive, 5)),
                (0, (SloClass::Batch, 0)),
                (2, (SloClass::Batch, 2)),
                (4, (SloClass::Batch, 4)),
            ],
            "strictly ascending tickets within each class"
        );
    }

    #[test]
    fn late_interactive_overtakes_waiting_batch_work() {
        let q = BatchQueue::new(4);
        q.submit_with_class('a', SloClass::Batch);
        q.submit_with_class('b', SloClass::Batch);
        assert_eq!(q.try_take(1).unwrap(), vec![(0, 'a')], "nothing better yet");
        q.submit_with_class('c', SloClass::Interactive);
        assert_eq!(
            q.next_batch().unwrap(),
            vec![(2, 'c'), (1, 'b')],
            "the late interactive request preempts the queued batch one"
        );
    }

    #[test]
    fn plain_submit_stays_global_fifo() {
        let q = BatchQueue::new(8);
        for i in 0..5u8 {
            q.submit(i);
        }
        let drained = q.try_take(8).unwrap();
        assert_eq!(
            drained,
            (0..5).map(|i| (i as u64, i as u8)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "closed BatchQueue")]
    fn submitting_after_close_panics() {
        let q = BatchQueue::new(1);
        q.close();
        q.submit(0u8);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_size_rejected() {
        let _ = BatchQueue::<u8>::new(0);
    }
}
