//! `lt-runtime`: the multi-threaded batched-inference runtime.
//!
//! The paper's throughput story rests on exploiting parallelism — `Nt`
//! tiles x `Nc` DPTC cores operating concurrently with operand broadcast
//! (Section IV, Fig. 5) — while amortizing weight loading across a batch
//! of inputs. This crate is the software analogue of that execution
//! layer, built on `std` only (the container has no crates.io access):
//!
//! * [`ThreadPool`] — a fixed-size worker pool over `std::sync::mpsc`.
//! * [`ParallelBackend`] — wraps any [`lt_core::ComputeBackend`] and
//!   partitions every GEMM into the canonical
//!   [`lt_core::backend::row_blocks`] work items, dispatched across the
//!   pool. It is itself a `ComputeBackend`, so it drops into
//!   `lt_nn::BackendEngine` (or anywhere else) unchanged.
//! * [`BatchQueue`] — an SLO-class-aware request-coalescing queue:
//!   concurrent inference submissions drain in `(class rank, ticket)`
//!   order as batches — FIFO within a class — mirroring how the
//!   accelerator amortizes per-layer weight loading across a batch of
//!   requests.
//! * [`loadgen`] — a seeded open/closed-loop load generator (Poisson
//!   and Markov-modulated bursty arrivals, mixed length and SLO-class
//!   distributions) plus latency percentile helpers, for exercising the
//!   serving stack deterministically.
//!
//! # Determinism under parallelism
//!
//! Every row block of a GEMM owns a noise stream rooted at
//! [`lt_core::backend::split_seed`]`(call_seed, block_index)`, so results
//! never depend on which thread computes which block. For any backend
//! and thread count, [`ParallelBackend`] is bit-identical to the
//! sequential [`lt_core::blocked_gemm`]; for backends whose plain `gemm`
//! is itself the blocked loop (`lt_dptc::DptcBackend` at every
//! `Fidelity` variant, exact backends like [`lt_core::NativeBackend`])
//! it is bit-identical to the wrapped backend, enforced by
//! `tests/runtime_determinism.rs`.
//!
//! ```
//! use lt_core::{ComputeBackend, Matrix64, NativeBackend, RunCtx};
//! use lt_runtime::ParallelBackend;
//!
//! let a = Matrix64::from_fn(64, 32, |i, j| ((i + j) as f64 * 0.1).sin());
//! let b = Matrix64::from_fn(32, 48, |i, j| ((i * j) as f64 * 0.1).cos());
//! let parallel = ParallelBackend::new(NativeBackend, 4);
//! let got = parallel.gemm(a.view(), b.view(), &mut RunCtx::new(7));
//! let want = NativeBackend.gemm(a.view(), b.view(), &mut RunCtx::new(7));
//! assert_eq!(got, want, "parallel == sequential, bit for bit");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod loadgen;
pub mod parallel;
pub mod pool;
pub mod threads;

pub use batch::{BatchQueue, SloClass};
pub use loadgen::{ArrivalModel, GenRequest, LengthMix, LoadgenConfig, SloMix};
pub use parallel::{ParallelBackend, MIN_PARALLEL_MACS};
pub use pool::ThreadPool;
pub use threads::ThreadsConfig;
