//! [`ThreadsConfig`]: the one knob that turns intra-GEMM row-block
//! parallelism on — programmatically or via the `LT_THREADS`
//! environment variable.
//!
//! The serving layers (`lt_nn::serve::Server`,
//! `lt_nn::serve::decode::DecodeServer`) consult this config at
//! construction: `threads > 1` wraps the compute backend in a
//! [`crate::ParallelBackend`] over one shared [`crate::ThreadPool`], so
//! every routed GEMM fans out as the canonical
//! [`lt_core::backend::row_blocks`] work items. Because each row
//! block's noise stream is rooted at
//! [`lt_core::backend::split_seed`]`(call_seed, block_index)`, results
//! are bit-identical at every thread count — the knob trades wall-clock
//! only, never values.

use std::fmt;

/// Environment variable read by [`ThreadsConfig::from_env`].
pub const LT_THREADS_ENV: &str = "LT_THREADS";

/// How many threads a serving path may fan each GEMM out across.
///
/// `1` (the default) keeps the exact sequential execution path — no
/// pool, no wrapping, zero overhead. Anything larger opts into
/// [`crate::ParallelBackend`] dispatch over a shared pool of that many
/// workers.
///
/// ```
/// use lt_runtime::ThreadsConfig;
/// assert!(!ThreadsConfig::default().is_parallel());
/// assert_eq!(ThreadsConfig::new(4).threads(), 4);
/// assert_eq!(ThreadsConfig::new(0).threads(), 1, "clamps to one");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadsConfig {
    threads: usize,
}

impl ThreadsConfig {
    /// An explicit thread count (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        ThreadsConfig {
            threads: threads.max(1),
        }
    }

    /// Reads `LT_THREADS` from the environment: unset, empty, `0`, or
    /// unparsable all mean sequential (`1`), so a stray value can never
    /// silently change what a run computes — only, at worst, how many
    /// workers compute it.
    pub fn from_env() -> Self {
        let threads = std::env::var(LT_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        ThreadsConfig::new(threads)
    }

    /// The configured worker count (always at least one).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this config asks for pool dispatch at all.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for ThreadsConfig {
    /// Sequential execution — the exact unwrapped backend path.
    fn default() -> Self {
        ThreadsConfig::new(1)
    }
}

impl fmt::Debug for ThreadsConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadsConfig")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_and_the_parallel_predicate() {
        assert_eq!(ThreadsConfig::new(8).threads(), 8);
        assert!(ThreadsConfig::new(2).is_parallel());
        assert!(!ThreadsConfig::new(1).is_parallel());
        assert_eq!(ThreadsConfig::default(), ThreadsConfig::new(1));
    }

    #[test]
    fn env_parsing_is_forgiving() {
        // `from_env` itself is exercised without mutating the process
        // environment (tests run concurrently): the parsing contract is
        // the same closed-form expression applied to captured values.
        let parse = |v: Option<&str>| {
            ThreadsConfig::new(v.and_then(|v| v.trim().parse::<usize>().ok()).unwrap_or(1))
        };
        assert_eq!(parse(None).threads(), 1);
        assert_eq!(parse(Some("")).threads(), 1);
        assert_eq!(parse(Some("banana")).threads(), 1);
        assert_eq!(parse(Some("0")).threads(), 1);
        assert_eq!(parse(Some(" 4 ")).threads(), 4);
    }
}
