//! Seeded load generation for the serving stack.
//!
//! A serving system is judged under *load*, not on isolated runs: the
//! latency it delivers depends on how requests arrive (steady vs
//! bursty), how long they are, and what service class they carry. This
//! module synthesizes such workloads deterministically — every trace is
//! a pure function of a [`LoadgenConfig`] (seed included), so a CI job
//! can replay the exact same arrival pattern on every commit and gate
//! the resulting latency percentiles.
//!
//! * [`ArrivalModel`] — Poisson (exponential inter-arrivals) or
//!   Markov-modulated bursty arrivals (a two-state calm/burst chain, the
//!   classical model for flash crowds).
//! * [`LengthMix`] — a categorical mix of prompt/output length buckets
//!   (e.g. mostly-short with a heavy tail of long prompts).
//! * [`SloMix`] — a categorical mix of [`SloClass`] assignments, each
//!   with an optional time-to-first-token deadline.
//! * [`generate`](LoadgenConfig::generate) — the trace itself: a vector
//!   of [`GenRequest`] with arrival timestamps in simulated
//!   microseconds.
//! * [`percentile`] / [`LatencyStats`] — nearest-rank percentile
//!   helpers for summarizing measured latencies.
//!
//! All randomness comes from a private SplitMix64 stream; the module
//! uses no wall clock and no global state.
//!
//! ```
//! use lt_runtime::loadgen::LoadgenConfig;
//!
//! let config = LoadgenConfig::smoke(17, 8);
//! let a = config.generate();
//! let b = config.generate();
//! assert_eq!(a, b, "same config, same trace — bit for bit");
//! assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
//! ```

use crate::batch::SloClass;

/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators"). One instance per
/// generated trace; never shared, never reseeded from the environment.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }

    /// Exponential with the given rate (events per second), in seconds.
    fn next_exp(&mut self, rate_per_s: f64) -> f64 {
        debug_assert!(rate_per_s > 0.0);
        // 1 - U is in (0, 1], so ln never sees zero.
        -(1.0 - self.next_f64()).ln() / rate_per_s
    }
}

/// How requests arrive over (simulated) time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Memoryless arrivals: i.i.d. exponential inter-arrival times at a
    /// fixed mean rate. The textbook open-loop baseline.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// Markov-modulated Poisson process: a two-state chain alternates
    /// between a *calm* and a *burst* regime, each with its own Poisson
    /// rate. After every arrival the chain flips state with the given
    /// probability, producing the clustered arrivals that stress
    /// admission control far more than a steady stream of the same
    /// average rate.
    Bursty {
        /// Arrival rate while calm, requests per second.
        calm_rate_per_s: f64,
        /// Arrival rate while bursting, requests per second.
        burst_rate_per_s: f64,
        /// Probability of switching calm → burst after an arrival.
        p_enter_burst: f64,
        /// Probability of switching burst → calm after an arrival.
        p_exit_burst: f64,
    },
}

impl ArrivalModel {
    fn validate(&self) {
        match *self {
            ArrivalModel::Poisson { rate_per_s } => {
                assert!(rate_per_s > 0.0, "Poisson rate must be positive");
            }
            ArrivalModel::Bursty {
                calm_rate_per_s,
                burst_rate_per_s,
                p_enter_burst,
                p_exit_burst,
            } => {
                assert!(
                    calm_rate_per_s > 0.0 && burst_rate_per_s > 0.0,
                    "bursty rates must be positive"
                );
                assert!(
                    (0.0..=1.0).contains(&p_enter_burst) && (0.0..=1.0).contains(&p_exit_burst),
                    "switch probabilities must be in [0, 1]"
                );
            }
        }
    }
}

/// One weighted bucket of prompt/output lengths (both ranges inclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthBucket {
    /// Relative weight of this bucket in the mix.
    pub weight: f64,
    /// Minimum prompt length in tokens.
    pub prompt_min: usize,
    /// Maximum prompt length in tokens.
    pub prompt_max: usize,
    /// Minimum requested output tokens.
    pub out_min: usize,
    /// Maximum requested output tokens.
    pub out_max: usize,
}

/// A categorical mix of prompt/output-length buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthMix {
    /// The weighted buckets; at least one, all weights positive.
    pub buckets: Vec<LengthBucket>,
}

impl LengthMix {
    /// A single uniform bucket.
    pub fn uniform(prompt: (usize, usize), out: (usize, usize)) -> Self {
        LengthMix {
            buckets: vec![LengthBucket {
                weight: 1.0,
                prompt_min: prompt.0,
                prompt_max: prompt.1,
                out_min: out.0,
                out_max: out.1,
            }],
        }
    }

    /// The canonical serving mix: mostly short interactive prompts with
    /// a heavy tail of long ones, bounded so prompt + output fits the
    /// tiny decoder's 48-token context.
    pub fn short_with_long_tail() -> Self {
        LengthMix {
            buckets: vec![
                LengthBucket {
                    weight: 0.8,
                    prompt_min: 3,
                    prompt_max: 8,
                    out_min: 3,
                    out_max: 8,
                },
                LengthBucket {
                    weight: 0.2,
                    prompt_min: 16,
                    prompt_max: 32,
                    out_min: 4,
                    out_max: 12,
                },
            ],
        }
    }

    fn validate(&self) {
        assert!(
            !self.buckets.is_empty(),
            "LengthMix needs at least one bucket"
        );
        for b in &self.buckets {
            assert!(b.weight > 0.0, "bucket weights must be positive");
            assert!(
                b.prompt_min >= 1 && b.prompt_min <= b.prompt_max,
                "bad prompt range"
            );
            assert!(b.out_min >= 1 && b.out_min <= b.out_max, "bad output range");
        }
    }

    fn sample(&self, rng: &mut SplitMix64) -> (usize, usize) {
        let total: f64 = self.buckets.iter().map(|b| b.weight).sum();
        let mut pick = rng.next_f64() * total;
        let mut chosen = &self.buckets[self.buckets.len() - 1];
        for b in &self.buckets {
            if pick < b.weight {
                chosen = b;
                break;
            }
            pick -= b.weight;
        }
        (
            rng.next_range(chosen.prompt_min, chosen.prompt_max),
            rng.next_range(chosen.out_min, chosen.out_max),
        )
    }
}

/// One weighted SLO-class assignment in the mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Relative weight of this class in the mix.
    pub weight: f64,
    /// The class assigned to requests drawn from this entry.
    pub class: SloClass,
    /// Optional time-to-first-token deadline in simulated microseconds,
    /// measured from arrival. `None` means best-effort.
    pub ttft_deadline_us: Option<u64>,
}

/// A categorical mix of SLO classes with per-class TTFT deadlines.
#[derive(Debug, Clone, PartialEq)]
pub struct SloMix {
    /// The weighted class entries; at least one, all weights positive.
    pub entries: Vec<SloSpec>,
}

impl SloMix {
    /// Everything [`SloClass::Standard`] with no deadline.
    pub fn all_standard() -> Self {
        SloMix {
            entries: vec![SloSpec {
                weight: 1.0,
                class: SloClass::Standard,
                ttft_deadline_us: None,
            }],
        }
    }

    /// The canonical serving mix: a latency-sensitive interactive slice
    /// with a TTFT deadline, a standard bulk, and a best-effort batch
    /// tail.
    pub fn interactive_standard_batch(interactive_ttft_us: u64) -> Self {
        SloMix {
            entries: vec![
                SloSpec {
                    weight: 0.25,
                    class: SloClass::Interactive,
                    ttft_deadline_us: Some(interactive_ttft_us),
                },
                SloSpec {
                    weight: 0.55,
                    class: SloClass::Standard,
                    ttft_deadline_us: None,
                },
                SloSpec {
                    weight: 0.2,
                    class: SloClass::Batch,
                    ttft_deadline_us: None,
                },
            ],
        }
    }

    fn validate(&self) {
        assert!(!self.entries.is_empty(), "SloMix needs at least one entry");
        for e in &self.entries {
            assert!(e.weight > 0.0, "SLO mix weights must be positive");
        }
    }

    fn sample(&self, rng: &mut SplitMix64) -> SloSpec {
        let total: f64 = self.entries.iter().map(|e| e.weight).sum();
        let mut pick = rng.next_f64() * total;
        for e in &self.entries {
            if pick < e.weight {
                return *e;
            }
            pick -= e.weight;
        }
        self.entries[self.entries.len() - 1]
    }
}

/// A fully-specified synthetic workload. `generate()` is a pure
/// function of this struct — two equal configs produce bit-identical
/// traces.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Seed for the private SplitMix64 stream.
    pub seed: u64,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Vocabulary size; prompt tokens are drawn uniformly from
    /// `0..vocab`.
    pub vocab: usize,
    /// The arrival process.
    pub arrival: ArrivalModel,
    /// Prompt/output length distribution.
    pub lengths: LengthMix,
    /// SLO class distribution.
    pub slo: SloMix,
}

impl LoadgenConfig {
    /// A small bursty mixed-class scenario sized for CI smoke runs:
    /// `requests` arrivals from a calm/burst chain, the short-with-tail
    /// length mix, and the three-class SLO mix with a 100 ms interactive
    /// TTFT deadline.
    pub fn smoke(seed: u64, requests: usize) -> Self {
        LoadgenConfig {
            seed,
            requests,
            vocab: 16,
            arrival: ArrivalModel::Bursty {
                calm_rate_per_s: 50.0,
                burst_rate_per_s: 500.0,
                p_enter_burst: 0.15,
                p_exit_burst: 0.35,
            },
            lengths: LengthMix::short_with_long_tail(),
            slo: SloMix::interactive_standard_batch(100_000),
        }
    }

    /// Generates the request trace, sorted by arrival time (arrivals
    /// are emitted in time order by construction).
    ///
    /// # Panics
    ///
    /// Panics if the config is malformed (zero requests or vocab,
    /// non-positive rates or weights, inverted length ranges).
    pub fn generate(&self) -> Vec<GenRequest> {
        assert!(self.requests > 0, "loadgen needs at least one request");
        assert!(self.vocab > 0, "vocab must be positive");
        self.arrival.validate();
        self.lengths.validate();
        self.slo.validate();

        let mut rng = SplitMix64::new(self.seed);
        let mut now_s = 0.0_f64;
        let mut bursting = false;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests {
            let gap_s = match self.arrival {
                ArrivalModel::Poisson { rate_per_s } => rng.next_exp(rate_per_s),
                ArrivalModel::Bursty {
                    calm_rate_per_s,
                    burst_rate_per_s,
                    p_enter_burst,
                    p_exit_burst,
                } => {
                    let rate = if bursting {
                        burst_rate_per_s
                    } else {
                        calm_rate_per_s
                    };
                    let gap = rng.next_exp(rate);
                    let p_switch = if bursting {
                        p_exit_burst
                    } else {
                        p_enter_burst
                    };
                    if rng.next_f64() < p_switch {
                        bursting = !bursting;
                    }
                    gap
                }
            };
            now_s += gap_s;
            let (prompt_len, max_new_tokens) = self.lengths.sample(&mut rng);
            let prompt: Vec<usize> = (0..prompt_len)
                .map(|_| rng.next_range(0, self.vocab - 1))
                .collect();
            let spec = self.slo.sample(&mut rng);
            out.push(GenRequest {
                id,
                arrival_us: (now_s * 1e6) as u64,
                prompt,
                max_new_tokens,
                class: spec.class,
                ttft_deadline_us: spec.ttft_deadline_us,
            });
        }
        out
    }
}

/// One synthetic request in a generated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenRequest {
    /// Position in the trace (0-based, arrival order).
    pub id: usize,
    /// Arrival timestamp in simulated microseconds from trace start.
    pub arrival_us: u64,
    /// Prompt token ids, each in `0..vocab`.
    pub prompt: Vec<usize>,
    /// Requested number of generated tokens.
    pub max_new_tokens: usize,
    /// Service class for admission ordering.
    pub class: SloClass,
    /// Optional TTFT deadline in simulated microseconds from arrival.
    pub ttft_deadline_us: Option<u64>,
}

/// Nearest-rank percentile of a sample set (`p` in `[0, 100]`). The
/// slice need not be sorted; an empty slice yields zero.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// p50/p95/p99/max summary of a latency sample set, via nearest-rank
/// [`percentile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum sample.
    pub max: u64,
}

impl LatencyStats {
    /// Summarizes `samples` (all zeros when empty).
    pub fn from_samples(samples: &[u64]) -> Self {
        LatencyStats {
            p50: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
            p99: percentile(samples, 99.0),
            max: samples.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace_bit_for_bit() {
        let config = LoadgenConfig::smoke(123, 64);
        assert_eq!(config.generate(), config.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = LoadgenConfig::smoke(1, 32).generate();
        let b = LoadgenConfig::smoke(2, 32).generate();
        assert_ne!(a, b, "distinct seeds should produce distinct traces");
    }

    #[test]
    fn arrivals_are_monotonic_and_fields_in_range() {
        let config = LoadgenConfig::smoke(7, 128);
        let trace = config.generate();
        assert_eq!(trace.len(), 128);
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(!r.prompt.is_empty() && r.prompt.len() <= 32);
            assert!(r.prompt.iter().all(|&t| t < config.vocab));
            assert!((1..=12).contains(&r.max_new_tokens));
        }
        assert!(trace.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        let config = LoadgenConfig {
            arrival: ArrivalModel::Poisson { rate_per_s: 100.0 },
            ..LoadgenConfig::smoke(9, 2000)
        };
        let trace = config.generate();
        let span_s = trace.last().unwrap().arrival_us as f64 / 1e6;
        let rate = trace.len() as f64 / span_s;
        assert!(
            (60.0..=140.0).contains(&rate),
            "empirical rate {rate:.1}/s should be near 100/s"
        );
    }

    #[test]
    fn bursty_arrivals_cluster_more_than_poisson() {
        // Coefficient of variation of inter-arrival gaps: ~1 for
        // Poisson, strictly larger for the modulated chain.
        let cv = |trace: &[GenRequest]| {
            let gaps: Vec<f64> = trace
                .windows(2)
                .map(|w| (w[1].arrival_us - w[0].arrival_us) as f64)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let poisson = LoadgenConfig {
            arrival: ArrivalModel::Poisson { rate_per_s: 100.0 },
            ..LoadgenConfig::smoke(11, 2000)
        }
        .generate();
        let bursty = LoadgenConfig::smoke(11, 2000).generate();
        assert!(
            cv(&bursty) > cv(&poisson),
            "bursty CV {:.2} should exceed Poisson CV {:.2}",
            cv(&bursty),
            cv(&poisson)
        );
    }

    #[test]
    fn slo_mix_produces_every_class() {
        let trace = LoadgenConfig::smoke(3, 256).generate();
        for class in [SloClass::Interactive, SloClass::Standard, SloClass::Batch] {
            assert!(
                trace.iter().any(|r| r.class == class),
                "class {} absent from a 256-request mix",
                class.name()
            );
        }
        assert!(trace
            .iter()
            .all(|r| (r.class == SloClass::Interactive) == r.ttft_deadline_us.is_some()));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 95.0), 95);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(
            (stats.p50, stats.p95, stats.p99, stats.max),
            (50, 95, 99, 100)
        );
    }
}
