//! [`ParallelBackend`]: row-block parallel execution of any
//! [`ComputeBackend`], bit-identical to sequential blocked execution.

use crate::pool::ThreadPool;
use lt_core::backend::{row_blocks, split_seed};
use lt_core::{blocked_gemm_with_seed, ComputeBackend, Matrix64, MatrixView, RunCtx};
use std::fmt;
use std::sync::mpsc::channel;
use std::sync::Arc;

/// Default for [`ParallelBackend::with_min_parallel_macs`]: below this
/// many multiply-accumulates a GEMM runs inline on the calling thread,
/// where dispatch overhead would exceed the work *for a native-speed
/// kernel*. Simulation backends that are orders of magnitude slower per
/// MAC (the DPTC's circuit fidelity especially) should lower the gate.
/// The inline path uses the same seed partition, so the threshold never
/// affects results.
pub const MIN_PARALLEL_MACS: usize = 32 * 32 * 32;

/// Wraps a [`ComputeBackend`] and executes every GEMM as the canonical
/// [`row_blocks`] work items on a [`ThreadPool`].
///
/// `ParallelBackend<B>` is itself a [`ComputeBackend`], so it drops into
/// `lt_nn::BackendEngine` — or any other consumer of the trait —
/// unchanged. Because every row block's noise stream is rooted at
/// [`split_seed`]`(call_seed, block_index)`, the output is bit-identical
/// to [`lt_core::blocked_gemm`] on the wrapped backend for **every** thread
/// count; thread scheduling can only change *when* a block is computed,
/// never *what* it computes.
///
/// ```
/// use lt_core::{ComputeBackend, Matrix64, NativeBackend, RunCtx};
/// use lt_runtime::ParallelBackend;
///
/// let a = Matrix64::from_fn(96, 64, |i, j| ((i * 64 + j) as f64 * 0.01).sin());
/// let b = Matrix64::from_fn(64, 80, |i, j| ((i + j) as f64 * 0.02).cos());
/// let seq = NativeBackend.gemm(a.view(), b.view(), &mut RunCtx::new(1));
/// for threads in [1, 2, 4, 8] {
///     let par = ParallelBackend::new(NativeBackend, threads)
///         .gemm(a.view(), b.view(), &mut RunCtx::new(1));
///     assert_eq!(par, seq);
/// }
/// ```
pub struct ParallelBackend<B> {
    backend: Arc<B>,
    pool: Arc<ThreadPool>,
    name: String,
    min_parallel_macs: usize,
}

// Manual impl: cloning is two `Arc` bumps and must not require
// `B: Clone` (a derive would add that needless bound).
impl<B> Clone for ParallelBackend<B> {
    fn clone(&self) -> Self {
        ParallelBackend {
            backend: Arc::clone(&self.backend),
            pool: Arc::clone(&self.pool),
            name: self.name.clone(),
            min_parallel_macs: self.min_parallel_macs,
        }
    }
}

impl<B: ComputeBackend + Send + Sync + 'static> ParallelBackend<B> {
    /// Wraps `backend` with a dedicated pool of `threads` workers.
    pub fn new(backend: B, threads: usize) -> Self {
        ParallelBackend::with_pool(backend, Arc::new(ThreadPool::new(threads)))
    }

    /// Wraps `backend` over an existing (possibly shared) pool.
    pub fn with_pool(backend: B, pool: Arc<ThreadPool>) -> Self {
        let name = format!("parallel({})", backend.name());
        ParallelBackend {
            backend: Arc::new(backend),
            pool,
            name,
            min_parallel_macs: MIN_PARALLEL_MACS,
        }
    }

    /// Overrides the inline-execution gate (default
    /// [`MIN_PARALLEL_MACS`]): GEMMs below `macs` multiply-accumulates
    /// run on the calling thread instead of the pool. Set it low (or to
    /// zero) for slow simulation backends — e.g. circuit-fidelity DPTC,
    /// where even a small product is worth fanning out — and leave the
    /// default for native-speed kernels. Results are identical either
    /// way; only wall-clock changes.
    pub fn with_min_parallel_macs(mut self, macs: usize) -> Self {
        self.min_parallel_macs = macs;
        self
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The shared pool (e.g. to wrap a second backend over it).
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

impl<B: ComputeBackend> fmt::Debug for ParallelBackend<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelBackend")
            .field("backend", &self.backend)
            .field("threads", &self.pool.threads())
            .finish()
    }
}

impl<B: ComputeBackend + Send + Sync + 'static> ComputeBackend for ParallelBackend<B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn preferred_block_rows(&self) -> usize {
        self.backend.preferred_block_rows()
    }

    fn gemm_block(
        &self,
        a_rows: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        block_seed: u64,
    ) -> Matrix64 {
        // A single block is one work item; nothing to fan out.
        self.backend.gemm_block(a_rows, b, block_seed)
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, ctx: &mut RunCtx) -> Matrix64 {
        assert_eq!(
            a.cols(),
            b.rows(),
            "gemm shape mismatch: {:?} x {:?}",
            a.shape(),
            b.shape()
        );
        self.gemm_with_call_seed(a, b, ctx.next_seed())
    }

    fn gemm_batch(
        &self,
        pairs: &[(MatrixView<'_, f64>, MatrixView<'_, f64>)],
        ctx: &mut RunCtx,
    ) -> Vec<Matrix64> {
        // Draw call-level seeds in submission order (identical to the
        // default sequential loop), then run whole pairs concurrently:
        // for a batch there is more parallelism *across* requests than
        // within one product. A one-pair batch instead parallelizes
        // *inside* the product, and a batch of only tiny products runs
        // inline — all with identical results, since every path shares
        // the `blocked_gemm_with_seed` seed schedule.
        let seeds: Vec<u64> = pairs.iter().map(|_| ctx.next_seed()).collect();
        if pairs.len() == 1 {
            let (a, b) = pairs[0];
            return vec![self.gemm_with_call_seed(a, b, seeds[0])];
        }
        let largest = pairs
            .iter()
            .map(|&(a, b)| a.rows() * a.cols() * b.cols())
            .max()
            .unwrap_or(0);
        if self.pool.threads() <= 1 || largest < self.min_parallel_macs {
            return pairs
                .iter()
                .zip(&seeds)
                .map(|(&(a, b), &s)| blocked_gemm_with_seed(self.backend.as_ref(), a, b, s))
                .collect();
        }
        let (tx, rx) = channel();
        for (idx, (&(a, b), &seed)) in pairs.iter().zip(&seeds).enumerate() {
            let a = a.to_matrix();
            let b = b.to_matrix();
            let backend = Arc::clone(&self.backend);
            let tx = tx.clone();
            self.pool.execute(move || {
                let out = blocked_gemm_with_seed(backend.as_ref(), a.view(), b.view(), seed);
                let _ = tx.send((idx, out));
            });
        }
        drop(tx);
        let mut outs: Vec<Option<Matrix64>> = (0..pairs.len()).map(|_| None).collect();
        for _ in 0..pairs.len() {
            let (idx, out) = rx.recv().expect("a batch job panicked in the worker pool");
            outs[idx] = Some(out);
        }
        outs.into_iter()
            .map(|o| o.expect("job delivered"))
            .collect()
    }
}

impl<B: ComputeBackend + Send + Sync + 'static> ParallelBackend<B> {
    /// The row-block fan-out with the call-level seed already drawn —
    /// shared by `gemm` and the one-pair `gemm_batch` fast path.
    fn gemm_with_call_seed(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        call_seed: u64,
    ) -> Matrix64 {
        let (m, k) = a.shape();
        let n = b.cols();
        let blocks = row_blocks(m, self.backend.preferred_block_rows());
        if self.pool.threads() <= 1 || blocks.len() <= 1 || m * k * n < self.min_parallel_macs {
            // Same partition, same seeds, executed inline: bit-identical.
            return blocked_gemm_with_seed(self.backend.as_ref(), a, b, call_seed);
        }
        // Jobs must be `'static`: share `b` once, copy each strip of `a`.
        let b_shared = Arc::new(b.to_matrix());
        let (tx, rx) = channel();
        for (idx, &(r0, nrows)) in blocks.iter().enumerate() {
            let a_block = a.block(r0, 0, nrows, k).to_matrix();
            let b_shared = Arc::clone(&b_shared);
            let backend = Arc::clone(&self.backend);
            let tx = tx.clone();
            let seed = split_seed(call_seed, idx as u64);
            self.pool.execute(move || {
                let strip = backend.gemm_block(a_block.view(), b_shared.view(), seed);
                // The receiver disappears only if the caller panicked.
                let _ = tx.send((idx, strip));
            });
        }
        drop(tx);
        let mut out = Matrix64::zeros(m, n);
        for _ in 0..blocks.len() {
            let (idx, strip) = rx
                .recv()
                .expect("a row-block job panicked in the worker pool");
            let (r0, nrows) = blocks[idx];
            assert_eq!(strip.shape(), (nrows, n), "gemm_block shape mismatch");
            for i in 0..nrows {
                out.row_mut(r0 + i).copy_from_slice(strip.row(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_core::GaussianSampler;

    fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix64, Matrix64) {
        let mut rng = GaussianSampler::new(seed);
        (
            Matrix64::randn(m, k, 1.0, &mut rng),
            Matrix64::randn(k, n, 1.0, &mut rng),
        )
    }

    #[test]
    fn parallel_native_is_bit_identical_across_thread_counts() {
        let (a, b) = rand_pair(70, 40, 33, 1);
        let seq = lt_core::NativeBackend.gemm(a.view(), b.view(), &mut RunCtx::new(9));
        for threads in [1, 2, 4, 8] {
            let par = ParallelBackend::new(lt_core::NativeBackend, threads).gemm(
                a.view(),
                b.view(),
                &mut RunCtx::new(9),
            );
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn small_products_bypass_the_pool_with_identical_results() {
        let (a, b) = rand_pair(4, 4, 4, 2);
        let par = ParallelBackend::new(lt_core::NativeBackend, 4);
        let got = par.gemm(a.view(), b.view(), &mut RunCtx::new(3));
        let want = lt_core::blocked_gemm(
            &lt_core::NativeBackend,
            a.view(),
            b.view(),
            &mut RunCtx::new(3),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn lowering_the_parallel_gate_does_not_change_results() {
        // Forcing even a tiny product through the pool (gate 0) must be
        // bit-identical to the inline bypass — only scheduling differs.
        let (a, b) = rand_pair(24, 8, 8, 7);
        let inline = ParallelBackend::new(lt_core::NativeBackend, 4);
        let pooled = inline.clone().with_min_parallel_macs(0);
        let want = inline.gemm(a.view(), b.view(), &mut RunCtx::new(9));
        let got = pooled.gemm(a.view(), b.view(), &mut RunCtx::new(9));
        assert_eq!(got, want);
    }

    #[test]
    fn batch_matches_the_sequential_default() {
        let (a, b) = rand_pair(40, 24, 40, 3);
        let (c, d) = rand_pair(48, 24, 16, 4);
        let pairs = [(a.view(), b.view()), (c.view(), d.view())];
        let par = ParallelBackend::new(lt_core::NativeBackend, 4);
        let got = par.gemm_batch(&pairs, &mut RunCtx::new(5));
        // The trait's default forwards to `gemm` per pair.
        let want_0 = par.gemm(a.view(), b.view(), &mut RunCtx::new(5));
        assert_eq!(got[0], want_0);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1], c.matmul(&d));
    }

    #[test]
    fn advances_one_call_seed_per_gemm() {
        let (a, b) = rand_pair(64, 32, 32, 6);
        let par = ParallelBackend::new(lt_core::NativeBackend, 2);
        let mut ctx = RunCtx::new(0);
        let _ = par.gemm(a.view(), b.view(), &mut ctx);
        assert_eq!(ctx.calls(), 1);
    }

    #[test]
    fn reports_pool_and_backend() {
        let par = ParallelBackend::new(lt_core::NativeBackend, 3);
        assert_eq!(par.name(), "parallel(native)");
        assert_eq!(par.threads(), 3);
        assert_eq!(par.backend(), &lt_core::NativeBackend);
        let second = ParallelBackend::with_pool(lt_core::NativeBackend, Arc::clone(par.pool()));
        assert_eq!(second.threads(), 3);
    }
}
