//! A minimal, dependency-free benchmark harness.
//!
//! The container this workspace builds in has no crates.io access, so the
//! benches cannot link `criterion`; this module provides the small subset
//! we need: warmup, a timed measurement window, and a one-line report
//! with mean time per iteration and relative comparisons.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of one benchmark: mean wall-clock time per iteration.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark label.
    pub name: String,
    /// Iterations measured (after warmup).
    pub iters: u64,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
}

impl BenchReport {
    /// Mean time per iteration in microseconds.
    pub fn us_per_iter(&self) -> f64 {
        self.ns_per_iter / 1e3
    }

    /// Speedup of `self` relative to `other` (how many times faster
    /// `self` is).
    pub fn speedup_vs(&self, other: &BenchReport) -> f64 {
        other.ns_per_iter / self.ns_per_iter
    }

    /// Formats the report as a fixed-width table row.
    pub fn row(&self) -> String {
        format!(
            "{:<44} {:>12.2} us/iter  ({} iters)",
            self.name,
            self.us_per_iter(),
            self.iters
        )
    }
}

/// Runs `f` repeatedly: a short warmup, then a measurement window of at
/// least `window` (and at least 10 iterations), and returns the mean
/// time per iteration. The closure's result is `black_box`ed so the
/// optimizer cannot elide the work.
pub fn bench_for<R>(name: &str, window: Duration, mut f: impl FnMut() -> R) -> BenchReport {
    for _ in 0..3 {
        black_box(f());
    }
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        black_box(f());
        iters += 1;
        if iters >= 10 && start.elapsed() >= window {
            break;
        }
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    BenchReport {
        name: name.to_string(),
        iters,
        ns_per_iter,
    }
}

/// [`bench_for`] with the default 200 ms measurement window.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> BenchReport {
    bench_for(name, Duration::from_millis(200), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_positive_timings() {
        let r = bench_for("spin", Duration::from_millis(5), || {
            (0..1000u64).sum::<u64>()
        });
        assert!(r.ns_per_iter > 0.0);
        assert!(r.iters >= 10);
        assert!(r.row().contains("spin"));
    }

    #[test]
    fn speedup_is_a_ratio() {
        let fast = BenchReport {
            name: "fast".into(),
            iters: 1,
            ns_per_iter: 100.0,
        };
        let slow = BenchReport {
            name: "slow".into(),
            iters: 1,
            ns_per_iter: 400.0,
        };
        assert!((fast.speedup_vs(&slow) - 4.0).abs() < 1e-12);
    }
}
