//! `BENCH_repro.json` — the machine-readable perf/cost snapshot the
//! `repro` binary emits so the trajectory of cycles, energy, EDP, and
//! compute-path wall-clock is tracked across PRs (diff two checkouts'
//! files to see what a change cost or saved).
//!
//! The workspace has no serde (no crates.io access), so the JSON is
//! assembled by hand from a fixed, flat schema:
//!
//! ```json
//! {
//!   "schema": 4,
//!   "config": "LT-B",
//!   "precision_bits": 4,
//!   "models": [ { "name", "cycles", "energy_mj", "latency_ms",
//!                 "edp_mj_ms", "fps", "gmacs", "utilization",
//!                 "bandwidth_stall_ms", "fill_ms" }, ... ],
//!   "compute_path": { "recorded_ops", "recorded_gemm_macs",
//!                     "forward_record_us", "trace_replay_us" }
//! }
//! ```
//!
//! Schema 3 added the tile scheduler's self-explanation to both the
//! prefill (`models`) and `decode` sections: `utilization` (achieved
//! fraction of peak MACs over the scheduled window) and the stall
//! breakdown (`bandwidth_stall_ms` / `fill_ms`; the remainder of the
//! latency is compute).
//!
//! Schema 4 added the `kv` section: the paged KV-cache pressure run
//! (see [`crate::experiments::kv`]) — peak resident sessions on a
//! starved pool, preemption rate, prefix-sharing block savings, and the
//! KV-traffic share of decode bandwidth stalls. All of it deterministic
//! and gated.
//!
//! Schema 5 added the `kernel` section for the register-blocked GEMM
//! micro-kernel and the true integer execution path:
//! `prev_forward_record_us` (the committed pre-rework baseline, kept as
//! a `_us` field so it is exempt like all wall-clock) next to the fresh
//! `forward_record_us`, tiled-vs-naive and f64-vs-i8 wall-clocks, and
//! gated deterministic fields — the micro-tile geometry, the int8
//! forward's recorded op/MAC counts (integer execution must be
//! workload-transparent), i8/i4 code bytes for a reference weight
//! (i4 really halves memory), and the int8 logit deviation on the
//! exact engine (pure quantization error, no noise).
//!
//! Schema 6 added the `schedule_cache` section: the memoized op-schedule
//! cache's hit/miss/entry counters over a fixed replay workload (every
//! paper benchmark plus the analytical decode trace) — deterministic and
//! gated, since the op sequence is fixed — plus the decode serving
//! loop's before/after wall-clock (`prev_decode_record_replay_us`, the
//! committed PR-7 baseline, next to the fresh
//! `decode_record_replay_us`; both `_us`, both exempt).
//!
//! Schema 7 added the `serving` section: the SLO frontend's fixed
//! open-loop scenario (see [`crate::experiments::serving`]) run
//! unchunked and with chunked prefill. Every timestamp is *simulated*
//! picoseconds on a deterministic clock, so the whole section —
//! completion/rejection counts, TTFT and inter-token-latency
//! percentiles, goodput — is gated with no wall-clock exemptions.
//!
//! Schema 8 added the `speculation` section: the speculative-decoding
//! sweep (see [`crate::experiments::spec`]) — k∈{0,2,4,8} at batch 1
//! and batch 8 through the tapered tiny decoder, with the target's
//! verify cycles and the draft's proposal cycles replayed and gated
//! *separately*, plus acceptance rates and the batch-1 k=4 headline
//! reduction in target cycles per generated token. Exact backend,
//! fixed seeds: fully deterministic, fully gated.
//!
//! `models` replays every paper benchmark's analytical trace through the
//! LT-B 4-bit model (the Table V / Fig. 13 methodology). `compute_path`
//! wall-clocks the *real* record→replay pipeline: a tiny ViT forward
//! pass on the photonic DPTC backend with a trace recorder attached,
//! then the recorded trace costed by the simulator. `decode` replays the
//! autoregressive decode step (paper Section VI-B) at batch 1/4/16 —
//! cycles and energy per token, replayed tokens/s, KV-cache footprint
//! vs. context — and wall-clocks the executable KV-cached decode loop.
//!
//! Every field is deterministic except the `*_us` wall-clock ones, so
//! `repro check` can diff this file against a committed baseline with a
//! tight tolerance and fail CI on cycle/energy/EDP drift.

use crate::timing::bench;
use lt_arch::{ArchConfig, Simulator};
use lt_core::{GaussianSampler, TraceRecorder};
use lt_dptc::DptcBackend;
use lt_nn::decode::{DecodeSession, DecoderConfig, DecoderLm, SessionConfig};
use lt_nn::layers::ForwardCtx;
use lt_nn::model::{Classifier, ModelConfig, VisionTransformer};
use lt_nn::quant::QuantConfig;
use lt_nn::{BackendEngine, Tensor};
use lt_workloads::{DecodeTrace, TransformerConfig};

/// Formats an f64 for JSON (finite, fixed notation, enough digits to
/// diff meaningfully).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.6e}")
    }
}

/// Builds the `BENCH_repro.json` document.
pub fn bench_repro_json() -> String {
    let bits = 4;
    let arch = ArchConfig::lt_base(bits);
    let sim = Simulator::new(arch.clone());

    let mut models = Vec::new();
    for model in TransformerConfig::paper_benchmarks() {
        let r = sim.run_model(&model);
        models.push(format!(
            concat!(
                "    {{ \"name\": \"{}\", \"cycles\": {}, \"energy_mj\": {}, ",
                "\"latency_ms\": {}, \"edp_mj_ms\": {}, \"fps\": {}, \"gmacs\": {}, ",
                "\"utilization\": {}, \"bandwidth_stall_ms\": {}, \"fill_ms\": {} }}"
            ),
            model.name,
            r.all.cycles,
            num(r.all.energy.total().value()),
            num(r.all.latency.value()),
            num(r.all.edp()),
            num(r.fps()),
            num(model.total_macs() as f64 / 1e9),
            num(r.all.utilization),
            num(r.all.stalls.bandwidth.value()),
            num(r.all.stalls.fill.value()),
        ));
    }

    // Wall-clock the real compute path: record a tiny ViT forward on the
    // photonic backend, then replay the trace through the simulator.
    let mut rng = GaussianSampler::new(7);
    let mut vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let patches = Tensor::randn(16, 16, 1.0, &mut rng);
    let recorder = TraceRecorder::new();
    let record = bench("forward_record", || {
        let mut engine = BackendEngine::new(DptcBackend::paper(8, 7), 42);
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut engine, QuantConfig::fp32(), &mut nrng)
            .with_recorder(recorder.clone());
        let _ = recorder.take(); // keep only the latest pass
        vit.forward(&patches, &mut ctx)
    });
    let trace = recorder.take().coalesce();
    let replay = bench("trace_replay", || sim.run_trace(&trace));

    let (decode, decode_us) = decode_section();
    format!(
        "{{\n  \"schema\": 8,\n  \"config\": \"{}\",\n  \"precision_bits\": {},\n  \
         \"models\": [\n{}\n  ],\n  \"compute_path\": {{ \"recorded_ops\": {}, \
         \"recorded_gemm_macs\": {}, \"forward_record_us\": {}, \"trace_replay_us\": {} }},\n\
         {},\n{},\n{},\n{},\n{},\n{}\n}}\n",
        arch.name,
        bits,
        models.join(",\n"),
        trace.len(),
        trace.total_macs(),
        num(record.us_per_iter()),
        num(replay.us_per_iter()),
        kernel_section(record.us_per_iter()),
        decode,
        kv_section(),
        schedule_cache_section(decode_us),
        serving_section(),
        speculation_section(),
    )
}

/// The `speculation` section (schema 8): the speculative-decoding
/// sweep's per-(batch, k) rows — target cycles per token, itemized
/// draft cycles per token, acceptance rate, bandwidth-stall share —
/// plus the batch-1 k=4 headline reduction. All modeled/deterministic,
/// all gated.
fn speculation_section() -> String {
    let r = crate::experiments::spec::measure();
    let rows = |rows: &[crate::experiments::spec::SpecRow]| {
        rows.iter()
            .map(|row| {
                format!(
                    "      {{ \"k\": {}, \"ticks\": {}, \"decoded_tokens\": {}, \
                     \"target_cycles_per_token\": {}, \"draft_cycles_per_token\": {}, \
                     \"total_cycles_per_token\": {}, \"acceptance_rate\": {}, \
                     \"bandwidth_stall_frac\": {} }}",
                    row.k,
                    row.ticks,
                    row.decoded_tokens,
                    num(row.target_cycles_per_token()),
                    num(row.draft_cycles_per_token()),
                    num(row.total_cycles_per_token()),
                    num(row.acceptance_rate()),
                    num(row.bandwidth_stall_frac()),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    format!(
        "  \"speculation\": {{\n    \"taper_gain\": {}, \"max_new_tokens\": {},\n    \
         \"batch1\": [\n{}\n    ],\n    \"batch8\": [\n{}\n    ],\n    \
         \"b1_k4_target_reduction\": {}\n  }}",
        num(crate::experiments::spec::TAPER_GAIN as f64),
        crate::experiments::spec::MAX_NEW_TOKENS,
        rows(&r.batch1),
        rows(&r.batch8),
        num(r.b1_k4_target_reduction()),
    )
}

/// The `serving` section (schema 7): the SLO frontend's fixed scenario,
/// whole-prompt vs. chunked prefill. All simulated-time integers —
/// fully gated.
fn serving_section() -> String {
    let r = crate::experiments::serving::measure(24);
    let side = |name: &str, s: &lt_nn::ServingReport| {
        format!(
            "    \"{name}\": {{ \"completed\": {}, \"rejected\": {}, \"failed\": {}, \
             \"deadline_hits\": {}, \"deadline_misses\": {}, \
             \"ttft_p50_ps\": {}, \"ttft_p95_ps\": {}, \"ttft_p99_ps\": {}, \"ttft_max_ps\": {}, \
             \"itl_p50_ps\": {}, \"itl_p95_ps\": {}, \"itl_p99_ps\": {}, \"itl_max_ps\": {}, \
             \"generated_tokens\": {}, \"elapsed_ps\": {}, \"tokens_per_s\": {}, \
             \"goodput_tokens_per_s\": {}, \"preemptions\": {}, \"ticks\": {} }}",
            s.completed,
            s.rejected,
            s.failed,
            s.deadline_hits,
            s.deadline_misses,
            s.ttft_ps.p50,
            s.ttft_ps.p95,
            s.ttft_ps.p99,
            s.ttft_ps.max,
            s.itl_ps.p50,
            s.itl_ps.p95,
            s.itl_ps.p99,
            s.itl_ps.max,
            s.generated_tokens,
            s.elapsed_ps,
            s.tokens_per_s,
            s.goodput_tokens_per_s,
            s.preemptions,
            s.ticks,
        )
    };
    format!(
        "  \"serving\": {{\n    \"requests\": {},\n    \"loadgen_seed\": {},\n    \
         \"prefill_chunk_tokens\": {},\n{},\n{}\n  }}",
        r.requests,
        r.seed,
        crate::experiments::serving::PREFILL_CHUNK_TOKENS,
        side("unchunked", &r.unchunked),
        side("chunked", &r.chunked),
    )
}

/// The `schedule_cache` section (schema 6): the memoized op-schedule
/// cache's counters over a fixed replay — every paper benchmark's
/// analytical trace plus the batch-1 decode trace through one LT-B
/// simulator. The op sequence is fixed, so hits/misses/entries (and
/// their ratio) are deterministic and gated; the decode serving loop's
/// before/after wall-clock rides along as exempt `_us` fields
/// (`prev_decode_record_replay_us` is the committed PR-7 baseline).
fn schedule_cache_section(decode_record_replay_us: f64) -> String {
    // The committed pre-rework measurement (see ISSUE 8 acceptance).
    let prev_decode_record_replay_us = 1.233668e4;

    // Two passes over the fixed workload: the first populates (all
    // misses once coalesced traces are deduped by shape x dataflow),
    // the second replays warm — the steady-state serving regime.
    let sim = Simulator::new(ArchConfig::lt_base(4));
    for _ in 0..2 {
        for model in TransformerConfig::paper_benchmarks() {
            sim.run_trace(&model.trace());
        }
        sim.run_trace(&DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).op_trace());
    }
    let stats = sim.schedule_cache_stats();
    format!(
        "  \"schedule_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \
         \"hit_rate\": {}, \"prev_decode_record_replay_us\": {}, \
         \"decode_record_replay_us\": {} }}",
        stats.hits,
        stats.misses,
        stats.entries,
        num(stats.hit_rate()),
        num(prev_decode_record_replay_us),
        num(decode_record_replay_us),
    )
}

/// The `kernel` section (schema 5): the micro-kernel rework's
/// before/after wall-clock and the integer path's deterministic
/// footprint. `prev_forward_record_us` is the forward_record_us the
/// PR-6 baseline committed (Box-Muller sampler, per-use re-encoding,
/// pre-tiling kernel); the `_us` suffix keeps every host-dependent
/// field out of the `repro check` gate, while the integer-path fields
/// are modeled/deterministic and gated.
fn kernel_section(forward_record_us: f64) -> String {
    use lt_core::kernel::{KC, MR, NR};
    use lt_core::{quantized_gemm, reference_gemm, Matrix32, Matrix64, QuantizedMatrix};

    // The committed pre-rework measurement (see ISSUE 7 acceptance).
    let prev_forward_record_us = 2.711536e4;

    let (m, k, n) = (96usize, 256, 96);
    let mut rng = GaussianSampler::new(3);
    let a64 = Matrix64::randn(m, k, 1.0, &mut rng);
    let b64 = Matrix64::randn(k, n, 1.0, &mut rng);
    let naive = bench("naive_f64", || reference_gemm(&a64.view(), &b64.view()));
    let tiled = bench("tiled_f64", || a64.view().matmul(&b64.view()));

    let a32 = Matrix32::randn(m, k, 1.0, &mut rng);
    let b32 = Matrix32::randn(k, n, 1.0, &mut rng);
    let aq = QuantizedMatrix::quantize_rows(&a32.view(), 8, 32);
    let bq = QuantizedMatrix::quantize_cols(&b32.view(), 8, 32);
    let i8_gemm = bench("i8_gemm", || quantized_gemm(&aq, &bq));
    let wq4 = QuantizedMatrix::quantize_cols(&b32.view(), 4, 32);

    // Deterministic integer-path footprint: an int8 tiny-ViT forward on
    // the exact engine — recorded trace (must match fp32's: integer
    // execution is workload-transparent) and pure quantization error.
    let mut mrng = GaussianSampler::new(7);
    let vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut mrng);
    let patches = Tensor::randn(16, 16, 1.0, &mut mrng);
    let forward = |quant: QuantConfig, recorder: Option<&TraceRecorder>| -> Tensor {
        let mut model = vit.clone();
        let mut engine = lt_nn::ExactEngine;
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut engine, quant, &mut nrng);
        if let Some(r) = recorder {
            ctx = ctx.with_recorder(r.clone());
        }
        model.forward(&patches, &mut ctx)
    };
    let recorder = TraceRecorder::new();
    let int8_logits = forward(QuantConfig::int8(), Some(&recorder));
    let int8_trace = recorder.take().coalesce();
    let fp32_logits = forward(QuantConfig::fp32(), None);
    let logit_err = int8_logits.max_abs_diff(&fp32_logits);

    format!(
        "  \"kernel\": {{ \"micro_tile\": \"{MR}x{NR}x{KC}\", \
         \"prev_forward_record_us\": {}, \"forward_record_us\": {}, \
         \"naive_f64_gemm_us\": {}, \"tiled_f64_gemm_us\": {}, \"i8_gemm_us\": {}, \
         \"int8_forward_ops\": {}, \"int8_forward_macs\": {}, \
         \"i8_weight_code_bytes\": {}, \"i4_weight_code_bytes\": {}, \
         \"int8_logit_err\": {} }}",
        num(prev_forward_record_us),
        num(forward_record_us),
        num(naive.us_per_iter()),
        num(tiled.us_per_iter()),
        num(i8_gemm.us_per_iter()),
        int8_trace.len(),
        int8_trace.total_macs(),
        bq.code_bytes(),
        wq4.code_bytes(),
        num(logit_err as f64),
    )
}

/// The `kv` section: the paged KV-cache memory-pressure run. Every
/// field is deterministic (exact backend, fixed request mix), so the
/// baseline check gates them all.
fn kv_section() -> String {
    let r = crate::experiments::kv::measure();
    let s = &r.stats;
    format!(
        "  \"kv\": {{ \"pool_blocks\": {}, \"block_tokens\": {}, \"sessions\": {}, \
         \"max_resident_sessions\": {}, \"preemptions\": {}, \"preemption_rate\": {}, \
         \"prefix_hits\": {}, \"prefix_shared_blocks\": {}, \"prefix_shared_tokens\": {}, \
         \"kv_hbm_mb\": {}, \"kv_bandwidth_stall_frac\": {}, \"decoded_tokens\": {} }}",
        r.pool_blocks,
        r.block_tokens,
        r.sessions,
        s.peak_resident_sessions,
        s.preemptions,
        num(r.preemption_rate()),
        s.prefix_hits,
        s.prefix_shared_blocks,
        s.prefix_shared_tokens,
        num(r.kv_hbm_bytes / 1e6),
        num(r.kv_bandwidth_stall_frac()),
        s.decoded_tokens,
    )
}

/// The `decode` section: the paper's Section VI-B decode regime, both
/// analytical (GPT2-small at context 512, batch 1/4/16, replayed through
/// LT-B 8-bit) and executable (a KV-cached tiny decoder LM wall-clocked
/// through record→replay). All fields deterministic except `*_us`.
/// Returns the section plus the decode wall-clock, which the
/// `schedule_cache` section reports next to its committed baseline.
fn decode_section() -> (String, f64) {
    let bits = 8;
    let arch = ArchConfig::lt_base(bits);
    let sim = Simulator::new(arch.clone());
    let model = TransformerConfig::gpt2_small(1);
    let context = 512;

    let mut batches = Vec::new();
    for batch in [1usize, 4, 16] {
        let trace = DecodeTrace::new(model.clone(), context, batch);
        let r = sim.run_trace(&trace.op_trace());
        let tokens_per_s = batch as f64 / (r.latency.value() * 1e-3);
        batches.push(format!(
            concat!(
                "      {{ \"batch\": {}, \"cycles_per_token\": {}, ",
                "\"energy_per_token_mj\": {}, \"tokens_per_s\": {}, ",
                "\"kv_cache_bytes\": {}, \"utilization\": {}, ",
                "\"bandwidth_stall_frac\": {} }}"
            ),
            batch,
            num(r.cycles as f64 / batch as f64),
            num(r.energy.total().value() / batch as f64),
            num(tokens_per_s),
            trace.kv_cache_bytes(bits),
            num(r.utilization),
            num(r.stalls.bandwidth_fraction()),
        ));
    }

    let kv_rows: Vec<String> = [128usize, 512, 2048]
        .iter()
        .map(|&ctx| {
            let kv = |b: usize| DecodeTrace::new(model.clone(), ctx, b).kv_cache_bytes(bits);
            format!(
                "      {{ \"context\": {ctx}, \"kv_bytes_b1\": {}, \"kv_bytes_b4\": {}, \
                 \"kv_bytes_b16\": {} }}",
                kv(1),
                kv(4),
                kv(16)
            )
        })
        .collect();

    // Wall-clock the executable KV-cached decode loop: one real session
    // (prefill + steps) on the photonic backend, costed per token.
    let mut rng = GaussianSampler::new(7);
    let lm = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let new_tokens = 8;
    let decode = bench("decode_record_replay", || {
        let mut session = DecodeSession::new(
            &lm,
            0,
            vec![3, 1, 4, 1, 5, 9],
            new_tokens,
            DptcBackend::paper(8, 7),
            SessionConfig {
                seed: 42,
                kv_bits: bits,
                ..SessionConfig::default()
            },
        );
        session.prefill(&lm, &sim);
        while !session.is_done() {
            session.step(&lm, &sim);
        }
        session.into_reply()
    });

    let section = format!(
        "  \"decode\": {{\n    \"model\": \"{}\",\n    \"context\": {},\n    \
         \"batches\": [\n{}\n    ],\n    \"kv_vs_context\": [\n{}\n    ],\n    \
         \"compute_path\": {{ \"decoded_tokens\": {}, \"decode_record_replay_us\": {} }}\n  }}",
        model.name,
        context,
        batches.join(",\n"),
        kv_rows.join(",\n"),
        new_tokens,
        num(decode.us_per_iter()),
    );
    (section, decode.us_per_iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_contains_every_benchmark_and_balances_braces() {
        let json = bench_repro_json();
        for name in [
            "DeiT-T-224",
            "DeiT-S-224",
            "DeiT-B-224",
            "BERT-base-128",
            "BERT-large-320",
        ] {
            assert!(json.contains(name), "missing {name}");
        }
        for key in [
            "\"schema\"",
            "\"cycles\"",
            "\"energy_mj\"",
            "\"edp_mj_ms\"",
            "\"forward_record_us\"",
            "\"trace_replay_us\"",
            "\"decode\"",
            "\"cycles_per_token\"",
            "\"tokens_per_s\"",
            "\"kv_vs_context\"",
            "\"decode_record_replay_us\"",
            "\"utilization\"",
            "\"bandwidth_stall_ms\"",
            "\"fill_ms\"",
            "\"bandwidth_stall_frac\"",
            "\"kv\"",
            "\"max_resident_sessions\"",
            "\"preemption_rate\"",
            "\"prefix_shared_blocks\"",
            "\"kv_bandwidth_stall_frac\"",
            "\"kernel\"",
            "\"micro_tile\"",
            "\"prev_forward_record_us\"",
            "\"i8_gemm_us\"",
            "\"int8_forward_macs\"",
            "\"i4_weight_code_bytes\"",
            "\"int8_logit_err\"",
            "\"schedule_cache\"",
            "\"hits\"",
            "\"misses\"",
            "\"entries\"",
            "\"hit_rate\"",
            "\"prev_decode_record_replay_us\"",
            "\"serving\"",
            "\"prefill_chunk_tokens\"",
            "\"unchunked\"",
            "\"chunked\"",
            "\"ttft_p99_ps\"",
            "\"itl_max_ps\"",
            "\"goodput_tokens_per_s\"",
            "\"deadline_hits\"",
            "\"speculation\"",
            "\"taper_gain\"",
            "\"batch1\"",
            "\"batch8\"",
            "\"target_cycles_per_token\"",
            "\"draft_cycles_per_token\"",
            "\"acceptance_rate\"",
            "\"b1_k4_target_reduction\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.contains("\"schema\": 8"), "schema bumped");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
