//! `BENCH_repro.json` — the machine-readable perf/cost snapshot the
//! `repro` binary emits so the trajectory of cycles, energy, EDP, and
//! compute-path wall-clock is tracked across PRs (diff two checkouts'
//! files to see what a change cost or saved).
//!
//! The workspace has no serde (no crates.io access), so the JSON is
//! assembled by hand from a fixed, flat schema:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "config": "LT-B",
//!   "precision_bits": 4,
//!   "models": [ { "name", "cycles", "energy_mj", "latency_ms",
//!                 "edp_mj_ms", "fps", "gmacs" }, ... ],
//!   "compute_path": { "recorded_ops", "recorded_gemm_macs",
//!                     "forward_record_us", "trace_replay_us" }
//! }
//! ```
//!
//! `models` replays every paper benchmark's analytical trace through the
//! LT-B 4-bit model (the Table V / Fig. 13 methodology). `compute_path`
//! wall-clocks the *real* record→replay pipeline: a tiny ViT forward
//! pass on the photonic DPTC backend with a trace recorder attached,
//! then the recorded trace costed by the simulator.

use crate::timing::bench;
use lt_arch::{ArchConfig, Simulator};
use lt_core::{GaussianSampler, TraceRecorder};
use lt_dptc::DptcBackend;
use lt_nn::layers::ForwardCtx;
use lt_nn::model::{Classifier, ModelConfig, VisionTransformer};
use lt_nn::quant::QuantConfig;
use lt_nn::{BackendEngine, Tensor};
use lt_workloads::TransformerConfig;

/// Formats an f64 for JSON (finite, fixed notation, enough digits to
/// diff meaningfully).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.6e}")
    }
}

/// Builds the `BENCH_repro.json` document.
pub fn bench_repro_json() -> String {
    let bits = 4;
    let arch = ArchConfig::lt_base(bits);
    let sim = Simulator::new(arch.clone());

    let mut models = Vec::new();
    for model in TransformerConfig::paper_benchmarks() {
        let r = sim.run_model(&model);
        models.push(format!(
            concat!(
                "    {{ \"name\": \"{}\", \"cycles\": {}, \"energy_mj\": {}, ",
                "\"latency_ms\": {}, \"edp_mj_ms\": {}, \"fps\": {}, \"gmacs\": {} }}"
            ),
            model.name,
            r.all.cycles,
            num(r.all.energy.total().value()),
            num(r.all.latency.value()),
            num(r.all.edp()),
            num(r.fps()),
            num(model.total_macs() as f64 / 1e9),
        ));
    }

    // Wall-clock the real compute path: record a tiny ViT forward on the
    // photonic backend, then replay the trace through the simulator.
    let mut rng = GaussianSampler::new(7);
    let mut vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let patches = Tensor::randn(16, 16, 1.0, &mut rng);
    let recorder = TraceRecorder::new();
    let record = bench("forward_record", || {
        let mut engine = BackendEngine::new(DptcBackend::paper(8, 7), 42);
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut engine, QuantConfig::fp32(), &mut nrng)
            .with_recorder(recorder.clone());
        let _ = recorder.take(); // keep only the latest pass
        vit.forward(&patches, &mut ctx)
    });
    let trace = recorder.take().coalesce();
    let replay = bench("trace_replay", || sim.run_trace(&trace));

    format!(
        "{{\n  \"schema\": 1,\n  \"config\": \"{}\",\n  \"precision_bits\": {},\n  \
         \"models\": [\n{}\n  ],\n  \"compute_path\": {{ \"recorded_ops\": {}, \
         \"recorded_gemm_macs\": {}, \"forward_record_us\": {}, \"trace_replay_us\": {} }}\n}}\n",
        arch.name,
        bits,
        models.join(",\n"),
        trace.len(),
        trace.total_macs(),
        num(record.us_per_iter()),
        num(replay.us_per_iter()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_contains_every_benchmark_and_balances_braces() {
        let json = bench_repro_json();
        for name in [
            "DeiT-T-224",
            "DeiT-S-224",
            "DeiT-B-224",
            "BERT-base-128",
            "BERT-large-320",
        ] {
            assert!(json.contains(name), "missing {name}");
        }
        for key in [
            "\"schema\"",
            "\"cycles\"",
            "\"energy_mj\"",
            "\"edp_mj_ms\"",
            "\"forward_record_us\"",
            "\"trace_replay_us\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
