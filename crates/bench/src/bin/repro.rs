//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>   run one experiment (e.g. `repro table5`)
//! repro all            run everything (also writes BENCH_repro.json)
//! repro json           write + print BENCH_repro.json only
//! repro check [--tolerance 0.5%] [baseline]
//!                      perf-regression gate: regenerate the snapshot in
//!                      memory and diff it against the committed
//!                      baseline; non-zero exit on drift
//! repro list           list available experiments
//! ```
//!
//! `BENCH_repro.json` is the machine-readable perf/cost snapshot
//! (per-model cycles/energy/EDP plus record→replay wall-clock); commit
//! or diff it to track the trajectory across PRs. `repro check` is the
//! CI gate over exactly that file: modeled metrics must stay within
//! tolerance of the committed baseline (wall-clock `*_us` fields are
//! host-dependent and exempt), so a cost-model change either updates
//! the baseline intentionally in the same PR or fails the build.

use lt_bench::{all_experiments, bench_repro_json, compare};

const JSON_PATH: &str = "BENCH_repro.json";
const DEFAULT_TOLERANCE: f64 = 0.005; // 0.5%

fn write_json() -> String {
    let json = bench_repro_json();
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("wrote {JSON_PATH}"),
        Err(e) => eprintln!("could not write {JSON_PATH}: {e}"),
    }
    json
}

/// Parses `0.5%` / `0.005` into a fraction.
fn parse_tolerance(arg: &str) -> Option<f64> {
    let (num, percent) = match arg.strip_suffix('%') {
        Some(n) => (n, true),
        None => (arg, false),
    };
    let v: f64 = num.parse().ok()?;
    let frac = if percent { v / 100.0 } else { v };
    (frac >= 0.0 && frac.is_finite()).then_some(frac)
}

fn run_check(args: &[String]) -> ! {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut baseline_path = JSON_PATH.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let val = it.next().and_then(|v| parse_tolerance(v));
            match val {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("--tolerance needs a value like `0.5%` or `0.005`");
                    std::process::exit(2);
                }
            }
        } else {
            baseline_path = arg.clone();
        }
    }
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "regenerating the snapshot and diffing against {baseline_path} \
         (tolerance {:.3}%, wall-clock *_us exempt)...",
        tolerance * 100.0
    );
    let fresh = bench_repro_json();
    match compare(&baseline, &fresh, tolerance) {
        Ok(drift) if drift.is_empty() => {
            println!("repro check: OK — modeled metrics match the committed baseline");
            std::process::exit(0);
        }
        Ok(drift) => {
            println!(
                "repro check: FAILED — {} field(s) drifted beyond {:.3}%:",
                drift.len(),
                tolerance * 100.0
            );
            for d in &drift {
                println!("  {d}");
            }
            println!(
                "if this change is intended, refresh the baseline in the same PR:\n  \
                 cargo run --release -p lt-bench --bin repro -- json"
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("repro check: cannot compare: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = args.first().map(String::as_str).unwrap_or("list");
    let experiments = all_experiments();
    match arg {
        "list" => {
            println!("available experiments:");
            for (cmd, desc, _) in &experiments {
                println!("  {cmd:<8} {desc}");
            }
            println!("  json     write the machine-readable perf snapshot (BENCH_repro.json)");
            println!("  check    diff a fresh snapshot against the committed baseline");
            println!("  all      run everything");
        }
        "json" => {
            println!("{}", write_json());
        }
        "check" => run_check(&args[1..]),
        "all" => {
            for (cmd, desc, run) in &experiments {
                println!("================================================================");
                println!("== {cmd}: {desc}");
                println!("================================================================");
                println!("{}", run());
            }
            write_json();
        }
        cmd => match experiments.iter().find(|(c, _, _)| *c == cmd) {
            Some((_, desc, run)) => {
                println!("== {cmd}: {desc}\n");
                println!("{}", run());
            }
            None => {
                eprintln!("unknown experiment `{cmd}`; try `repro list`");
                std::process::exit(2);
            }
        },
    }
}
