//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>   run one experiment (e.g. `repro table5`)
//! repro all            run everything
//! repro list           list available experiments
//! ```

use lt_bench::all_experiments;

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "list".to_string());
    let experiments = all_experiments();
    match arg.as_str() {
        "list" => {
            println!("available experiments:");
            for (cmd, desc, _) in &experiments {
                println!("  {cmd:<8} {desc}");
            }
            println!("  all      run everything");
        }
        "all" => {
            for (cmd, desc, run) in &experiments {
                println!("================================================================");
                println!("== {cmd}: {desc}");
                println!("================================================================");
                println!("{}", run());
            }
        }
        cmd => match experiments.iter().find(|(c, _, _)| *c == cmd) {
            Some((_, desc, run)) => {
                println!("== {cmd}: {desc}\n");
                println!("{}", run());
            }
            None => {
                eprintln!("unknown experiment `{cmd}`; try `repro list`");
                std::process::exit(2);
            }
        },
    }
}
