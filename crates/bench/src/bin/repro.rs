//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>   run one experiment (e.g. `repro table5`)
//! repro all            run everything (also writes BENCH_repro.json)
//! repro json           write + print BENCH_repro.json only
//! repro list           list available experiments
//! ```
//!
//! `BENCH_repro.json` is the machine-readable perf/cost snapshot
//! (per-model cycles/energy/EDP plus record→replay wall-clock); commit
//! or diff it to track the trajectory across PRs.

use lt_bench::{all_experiments, bench_repro_json};

const JSON_PATH: &str = "BENCH_repro.json";

fn write_json() -> String {
    let json = bench_repro_json();
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("wrote {JSON_PATH}"),
        Err(e) => eprintln!("could not write {JSON_PATH}: {e}"),
    }
    json
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "list".to_string());
    let experiments = all_experiments();
    match arg.as_str() {
        "list" => {
            println!("available experiments:");
            for (cmd, desc, _) in &experiments {
                println!("  {cmd:<8} {desc}");
            }
            println!("  json     write the machine-readable perf snapshot (BENCH_repro.json)");
            println!("  all      run everything");
        }
        "json" => {
            println!("{}", write_json());
        }
        "all" => {
            for (cmd, desc, run) in &experiments {
                println!("================================================================");
                println!("== {cmd}: {desc}");
                println!("================================================================");
                println!("{}", run());
            }
            write_json();
        }
        cmd => match experiments.iter().find(|(c, _, _)| *c == cmd) {
            Some((_, desc, run)) => {
                println!("== {cmd}: {desc}\n");
                println!("{}", run());
            }
            None => {
                eprintln!("unknown experiment `{cmd}`; try `repro list`");
                std::process::exit(2);
            }
        },
    }
}
