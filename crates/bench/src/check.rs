//! `repro check` — the CI perf-regression gate over `BENCH_repro.json`.
//!
//! The snapshot's modeled metrics (cycles, energy, EDP, FPS, KV bytes)
//! are deterministic: they depend only on the architecture model and the
//! workload shapes, never on the host. So any drift between a fresh
//! snapshot and the committed baseline is a real change to the cost
//! model or the workloads — either an intended one (update the baseline
//! in the same PR) or a regression (fail the build). Wall-clock fields
//! (`*_us`) are host-dependent and exempt.
//!
//! The workspace has no serde, so this module carries a minimal
//! recursive-descent JSON reader sufficient for the snapshot's own
//! schema (objects, arrays, strings, numbers). It flattens a document
//! into `path -> scalar` pairs (`models[3].cycles`, `decode.batches[0]
//! .tokens_per_s`, ...) and compares two documents field by field under
//! a relative tolerance.

use std::fmt;

/// A scalar leaf of the flattened document.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Num(v) => write!(f, "{v}"),
            Scalar::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

/// Flattens a JSON document into ordered `(path, scalar)` pairs.
///
/// # Errors
///
/// Returns a message with byte offset on malformed input.
pub fn flatten(json: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    p.skip_ws();
    p.value("", &mut out)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        // The snapshot never escapes quotes; reject escapes rather than
        // silently misparse.
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf8 in string at byte {start}"))?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => return Err(format!("escape sequences unsupported at byte {}", self.pos)),
                _ => self.pos += 1,
            }
        }
        Err(format!("unterminated string from byte {start}"))
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn value(&mut self, path: &str, out: &mut Vec<(String, Scalar)>) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let child = if path.is_empty() {
                        key
                    } else {
                        format!("{path}.{key}")
                    };
                    self.value(&child, out)?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut i = 0usize;
                loop {
                    self.value(&format!("{path}[{i}]"), out)?;
                    i += 1;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => {
                let s = self.string()?;
                out.push((path.to_string(), Scalar::Str(s)));
                Ok(())
            }
            Some(_) => {
                let v = self.number()?;
                out.push((path.to_string(), Scalar::Num(v)));
                Ok(())
            }
            None => Err("unexpected end of input".to_string()),
        }
    }
}

/// Whether a field is host-dependent wall-clock, exempt from the gate.
fn is_wall_clock(path: &str) -> bool {
    path.rsplit('.').next().is_some_and(|leaf| {
        leaf.trim_end_matches(|c: char| c == ']' || c.is_ascii_digit() || c == '[')
            .ends_with("_us")
    })
}

/// Compares a fresh snapshot against the committed baseline under a
/// relative tolerance (e.g. `0.005` = 0.5%). Returns the list of
/// drifted fields — structural differences, string changes, and numeric
/// drift beyond tolerance — or an empty list when the gate passes.
///
/// # Errors
///
/// Returns a parse-error message if either document is malformed.
pub fn compare(baseline: &str, fresh: &str, tolerance: f64) -> Result<Vec<String>, String> {
    let base = flatten(baseline).map_err(|e| format!("baseline: {e}"))?;
    let new = flatten(fresh).map_err(|e| format!("fresh: {e}"))?;
    let mut drift = Vec::new();

    let base_keys: Vec<&String> = base.iter().map(|(k, _)| k).collect();
    let new_keys: Vec<&String> = new.iter().map(|(k, _)| k).collect();
    if base_keys != new_keys {
        for k in &base_keys {
            if !new_keys.contains(k) {
                drift.push(format!("field removed: {k}"));
            }
        }
        for k in &new_keys {
            if !base_keys.contains(k) {
                drift.push(format!("field added: {k} (update the baseline?)"));
            }
        }
        if drift.is_empty() {
            drift.push("fields reordered relative to the baseline".to_string());
        }
        return Ok(drift);
    }

    for ((path, want), (_, got)) in base.iter().zip(&new) {
        if is_wall_clock(path) {
            continue; // host-dependent; tracked via the uploaded artifact
        }
        match (want, got) {
            (Scalar::Num(a), Scalar::Num(b)) => {
                let scale = a.abs().max(b.abs());
                if (a - b).abs() > tolerance * scale {
                    let pct = if scale > 0.0 {
                        (a - b).abs() / scale * 100.0
                    } else {
                        0.0
                    };
                    drift.push(format!(
                        "{path}: baseline {a} vs fresh {b} ({pct:.3}% > {:.3}% tolerance)",
                        tolerance * 100.0
                    ));
                }
            }
            (a, b) if a != b => drift.push(format!("{path}: baseline {a} vs fresh {b}")),
            _ => {}
        }
    }
    Ok(drift)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "schema": 3, "config": "LT-B",
      "models": [ { "name": "DeiT-T-224", "cycles": 97000, "fps": 51000.0,
                    "utilization": 0.93, "bandwidth_stall_ms": 1.0e-5, "fill_ms": 2.0e-9 } ],
      "compute_path": { "forward_record_us": 1234.5 },
      "decode": { "batches": [ { "batch": 1, "tokens_per_s": 2.5e6,
                                 "bandwidth_stall_frac": 0.8 } ] }
    }"#;

    #[test]
    fn flatten_produces_full_paths() {
        let flat = flatten(DOC).unwrap();
        let get = |p: &str| {
            flat.iter()
                .find(|(k, _)| k == p)
                .unwrap_or_else(|| panic!("missing {p}"))
                .1
                .clone()
        };
        assert_eq!(get("schema"), Scalar::Num(3.0));
        assert_eq!(get("config"), Scalar::Str("LT-B".into()));
        assert_eq!(get("models[0].name"), Scalar::Str("DeiT-T-224".into()));
        assert_eq!(get("models[0].cycles"), Scalar::Num(97000.0));
        assert_eq!(get("decode.batches[0].tokens_per_s"), Scalar::Num(2.5e6));
    }

    #[test]
    fn identical_documents_pass() {
        assert!(compare(DOC, DOC, 0.005).unwrap().is_empty());
    }

    #[test]
    fn numeric_drift_beyond_tolerance_is_reported_and_within_passes() {
        let nudged = DOC.replace("97000", "97100"); // ~0.1%
        assert!(
            compare(DOC, &nudged, 0.005).unwrap().is_empty(),
            "0.1% < 0.5%"
        );
        let drifted = DOC.replace("97000", "99000"); // ~2%
        let report = compare(DOC, &drifted, 0.005).unwrap();
        assert_eq!(report.len(), 1, "{report:?}");
        assert!(report[0].contains("models[0].cycles"), "{report:?}");
    }

    #[test]
    fn wall_clock_fields_are_exempt() {
        let slower = DOC.replace("1234.5", "99999.0");
        assert!(compare(DOC, &slower, 0.005).unwrap().is_empty());
    }

    #[test]
    fn schema3_stall_fields_are_gated_not_exempt() {
        // The scheduler's self-explanation is a modeled, deterministic
        // quantity: drift in utilization or the stall breakdown is a
        // real cost-model change and must trip the gate (unlike the
        // `_ms` suffix's cousin `_us`, which is wall-clock).
        for (field, drifted) in [
            ("utilization", DOC.replace("0.93", "0.80")),
            ("bandwidth_stall_ms", DOC.replace("1.0e-5", "9.0e-5")),
            ("fill_ms", DOC.replace("2.0e-9", "9.0e-9")),
            ("bandwidth_stall_frac", DOC.replace("0.8", "0.4")),
        ] {
            let report = compare(DOC, &drifted, 0.005).unwrap();
            assert!(
                report.iter().any(|d| d.contains(field)),
                "{field} drift must be reported: {report:?}"
            );
        }
    }

    #[test]
    fn structural_drift_is_reported() {
        let extra = DOC.replace("\"cycles\": 97000", "\"cycles\": 97000, \"edp\": 1.0");
        let report = compare(DOC, &extra, 0.005).unwrap();
        assert!(
            report.iter().any(|d| d.contains("field added")),
            "{report:?}"
        );
        let renamed = DOC.replace("\"cycles\"", "\"cycle_count\"");
        let report = compare(DOC, &renamed, 0.005).unwrap();
        assert!(
            report.iter().any(|d| d.contains("field removed")),
            "{report:?}"
        );
    }

    #[test]
    fn string_changes_are_reported() {
        let renamed = DOC.replace("DeiT-T-224", "DeiT-T-384");
        let report = compare(DOC, &renamed, 0.005).unwrap();
        assert!(report[0].contains("models[0].name"), "{report:?}");
    }

    #[test]
    fn malformed_json_is_an_error_not_a_pass() {
        assert!(compare(DOC, "{ \"a\": ", 0.005).is_err());
        assert!(compare("not json", DOC, 0.005).is_err());
    }

    #[test]
    fn schema4_kv_fields_are_gated_not_exempt() {
        // The paged-KV pressure metrics are modeled and deterministic:
        // drift in residency, preemption rate, sharing savings, or the
        // KV stall share is a real scheduler/cost-model change.
        const KV_DOC: &str = r#"{ "kv": { "max_resident_sessions": 5,
          "preemption_rate": 0.25, "prefix_shared_blocks": 6,
          "kv_bandwidth_stall_frac": 0.12 } }"#;
        for (field, drifted) in [
            ("max_resident_sessions", KV_DOC.replace(": 5", ": 3")),
            ("preemption_rate", KV_DOC.replace("0.25", "0.75")),
            ("prefix_shared_blocks", KV_DOC.replace(": 6", ": 0")),
            ("kv_bandwidth_stall_frac", KV_DOC.replace("0.12", "0.52")),
        ] {
            let report = compare(KV_DOC, &drifted, 0.005).unwrap();
            assert!(
                report.iter().any(|d| d.contains(field)),
                "{field} drift must be reported: {report:?}"
            );
        }
    }

    #[test]
    fn schema5_kernel_fields_are_gated_except_wall_clock() {
        // The kernel section mixes host wall-clock (`*_us`, exempt —
        // including the committed `prev_forward_record_us` baseline)
        // with modeled integer-path facts (gated: trace footprint, code
        // bytes, pure quantization error).
        const KERNEL_DOC: &str = r#"{ "kernel": { "micro_tile": "4x8x256",
          "prev_forward_record_us": 27115.36, "forward_record_us": 3000.0,
          "i8_gemm_us": 700.0, "int8_forward_macs": 323840,
          "i4_weight_code_bytes": 12288, "int8_logit_err": 0.004 } }"#;
        for wall in ["27115.36", "3000.0", "700.0"] {
            let slower = KERNEL_DOC.replace(wall, "999999.0");
            assert!(
                compare(KERNEL_DOC, &slower, 0.005).unwrap().is_empty(),
                "wall-clock field holding {wall} must be exempt"
            );
        }
        for (field, drifted) in [
            ("micro_tile", KERNEL_DOC.replace("4x8x256", "8x8x128")),
            ("int8_forward_macs", KERNEL_DOC.replace("323840", "331072")),
            ("i4_weight_code_bytes", KERNEL_DOC.replace("12288", "24576")),
            ("int8_logit_err", KERNEL_DOC.replace("0.004", "0.4")),
        ] {
            let report = compare(KERNEL_DOC, &drifted, 0.005).unwrap();
            assert!(
                report.iter().any(|d| d.contains(field)),
                "{field} drift must be reported: {report:?}"
            );
        }
    }

    #[test]
    fn schema6_schedule_cache_fields_are_gated_except_wall_clock() {
        // The cache counters replay a fixed op sequence, so they are
        // deterministic and gated: a hit/miss drift means the cache key,
        // the invalidation fingerprint, or the replay workload changed.
        // The decode wall-clocks (`*_us`, including the committed
        // `prev_decode_record_replay_us` baseline) stay exempt.
        const CACHE_DOC: &str = r#"{ "schedule_cache": { "hits": 120,
          "misses": 14, "entries": 14, "hit_rate": 0.895522,
          "prev_decode_record_replay_us": 12336.68,
          "decode_record_replay_us": 3000.0 } }"#;
        for wall in ["12336.68", "3000.0"] {
            let slower = CACHE_DOC.replace(wall, "999999.0");
            assert!(
                compare(CACHE_DOC, &slower, 0.005).unwrap().is_empty(),
                "wall-clock field holding {wall} must be exempt"
            );
        }
        for (field, drifted) in [
            ("hits", CACHE_DOC.replace("120", "80")),
            ("misses", CACHE_DOC.replace(": 14,", ": 28,")),
            (
                "entries",
                CACHE_DOC.replace("\"entries\": 14", "\"entries\": 7"),
            ),
            ("hit_rate", CACHE_DOC.replace("0.895522", "0.5")),
        ] {
            let report = compare(CACHE_DOC, &drifted, 0.005).unwrap();
            assert!(
                report.iter().any(|d| d.contains(field)),
                "{field} drift must be reported: {report:?}"
            );
        }
    }

    #[test]
    fn schema7_serving_fields_are_gated_with_no_exemptions() {
        // The serving section is entirely simulated time on a seeded
        // workload — no field ends in `_us`, so every percentile,
        // count, and goodput number is inside the gate. A TTFT or ITL
        // drift means the scheduler, the chunking, or the cost model
        // changed behavior.
        const SERVING_DOC: &str = r#"{ "serving": { "requests": 24,
          "prefill_chunk_tokens": 4,
          "unchunked": { "completed": 22, "rejected": 1,
            "ttft_p99_ps": 48000, "itl_max_ps": 9000,
            "goodput_tokens_per_s": 120000 },
          "chunked": { "completed": 22, "itl_max_ps": 5000 } } }"#;
        for (field, drifted) in [
            ("completed", SERVING_DOC.replace("22,", "20,")),
            (
                "rejected",
                SERVING_DOC.replace("\"rejected\": 1", "\"rejected\": 3"),
            ),
            ("ttft_p99_ps", SERVING_DOC.replace("48000", "52000")),
            ("itl_max_ps", SERVING_DOC.replace("9000", "12000")),
            (
                "goodput_tokens_per_s",
                SERVING_DOC.replace("120000", "90000"),
            ),
            (
                "chunked.itl_max_ps",
                SERVING_DOC.replace("\"itl_max_ps\": 5000", "\"itl_max_ps\": 9000"),
            ),
        ] {
            let report = compare(SERVING_DOC, &drifted, 0.005).unwrap();
            assert!(
                report.iter().any(|d| d.contains(field)),
                "{field} drift must be reported: {report:?}"
            );
        }
    }

    #[test]
    fn schema8_speculation_fields_are_gated_with_no_exemptions() {
        // The speculation sweep runs the exact backend on fixed seeds:
        // every cycles-per-token figure, acceptance rate, and the
        // headline reduction is modeled and deterministic. Drift means
        // the speculative execution, the verify costing, or the
        // rollback accounting changed behavior.
        const SPEC_DOC: &str = r#"{ "speculation": { "taper_gain": 0.25,
          "batch1": [ { "k": 4, "target_cycles_per_token": 31000.0,
            "draft_cycles_per_token": 16000.0, "acceptance_rate": 0.41,
            "bandwidth_stall_frac": 0.8 } ],
          "b1_k4_target_reduction": 2.6 } }"#;
        for (field, drifted) in [
            (
                "target_cycles_per_token",
                SPEC_DOC.replace("31000.0", "62000.0"),
            ),
            (
                "draft_cycles_per_token",
                SPEC_DOC.replace("16000.0", "1600.0"),
            ),
            ("acceptance_rate", SPEC_DOC.replace("0.41", "0.11")),
            ("b1_k4_target_reduction", SPEC_DOC.replace("2.6", "1.1")),
        ] {
            let report = compare(SPEC_DOC, &drifted, 0.005).unwrap();
            assert!(
                report.iter().any(|d| d.contains(field)),
                "{field} drift must be reported: {report:?}"
            );
        }
    }

    #[test]
    fn the_real_snapshot_flattens() {
        let json = crate::bench_repro_json();
        let flat = flatten(&json).unwrap();
        assert!(flat.len() > 40, "snapshot has {} fields", flat.len());
        assert!(flat
            .iter()
            .any(|(k, _)| k == "decode.batches[2].cycles_per_token"));
        assert!(flat.iter().any(|(k, _)| k == "models[0].utilization"));
        assert!(flat
            .iter()
            .any(|(k, _)| k == "decode.batches[0].bandwidth_stall_frac"));
        for kv_field in [
            "kv.max_resident_sessions",
            "kv.preemption_rate",
            "kv.prefix_shared_blocks",
            "kv.kv_bandwidth_stall_frac",
        ] {
            assert!(
                flat.iter().any(|(k, _)| k == kv_field),
                "missing {kv_field}"
            );
        }
        for kernel_field in [
            "kernel.micro_tile",
            "kernel.prev_forward_record_us",
            "kernel.forward_record_us",
            "kernel.int8_forward_macs",
            "kernel.i4_weight_code_bytes",
            "kernel.int8_logit_err",
        ] {
            assert!(
                flat.iter().any(|(k, _)| k == kernel_field),
                "missing {kernel_field}"
            );
        }
        for cache_field in [
            "schedule_cache.hits",
            "schedule_cache.misses",
            "schedule_cache.entries",
            "schedule_cache.hit_rate",
            "schedule_cache.prev_decode_record_replay_us",
            "schedule_cache.decode_record_replay_us",
        ] {
            assert!(
                flat.iter().any(|(k, _)| k == cache_field),
                "missing {cache_field}"
            );
        }
        for serving_field in [
            "serving.requests",
            "serving.prefill_chunk_tokens",
            "serving.unchunked.ttft_p99_ps",
            "serving.unchunked.goodput_tokens_per_s",
            "serving.chunked.itl_max_ps",
            "serving.chunked.completed",
        ] {
            assert!(
                flat.iter().any(|(k, _)| k == serving_field),
                "missing {serving_field}"
            );
        }
        for spec_field in [
            "speculation.taper_gain",
            "speculation.batch1[0].k",
            "speculation.batch1[2].target_cycles_per_token",
            "speculation.batch1[2].draft_cycles_per_token",
            "speculation.batch8[3].acceptance_rate",
            "speculation.b1_k4_target_reduction",
        ] {
            assert!(
                flat.iter().any(|(k, _)| k == spec_field),
                "missing {spec_field}"
            );
        }
        // And a regenerated snapshot passes its own gate on the
        // deterministic fields.
        let again = crate::bench_repro_json();
        assert_eq!(compare(&json, &again, 0.005).unwrap(), Vec::<String>::new());
    }
}
