//! Extension experiments beyond the paper's printed figures: the
//! wavelength-scaling discussion of Section V-B, an ablation of the
//! analog temporal-accumulation depth (Section IV-C2), the heterogeneous
//! core search of Section VI-A, and a quantitative evaluation of the PCM
//! crossbar that Table I only compares qualitatively.

use lt_arch::search::search_core_geometry;
use lt_arch::{ArchConfig, PowerBreakdown, Simulator};
use lt_baselines::PcmAccelerator;
use lt_dptc::DptcConfig;
use lt_workloads::{DecodeTrace, TransformerConfig};
use std::fmt::Write;

/// Wavelength scaling (paper Section V-B): widen the core's spectral
/// parallelism up to the 112-channel FSR bound and watch latency fall.
pub fn ext_lambda() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Wavelength scaling: LT-B with N_lambda up to the 112-channel FSR bound"
    )
    .unwrap();
    writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "Nlambda", "latency (ms)", "energy (mJ)", "power (W)", "EDP"
    )
    .unwrap();
    let model = TransformerConfig::deit_tiny();
    let mut prev_latency = f64::INFINITY;
    for nlambda in [12usize, 24, 48, 96, 112] {
        let mut cfg = ArchConfig::lt_base(4);
        cfg.name = format!("LT-B/{nlambda}lambda");
        cfg.core = DptcConfig::new(12, 12, nlambda);
        let power = PowerBreakdown::for_config(&cfg).total().value();
        let r = Simulator::new(cfg).run_model(&model);
        writeln!(
            out,
            "{nlambda:>8} {:>12.5} {:>12.3} {:>12.2} {:>12.5}",
            r.all.latency.value(),
            r.all.energy.total().value(),
            power,
            r.all.edp()
        )
        .unwrap();
        assert!(r.all.latency.value() <= prev_latency + 1e-12);
        prev_latency = r.all.latency.value();
    }
    writeln!(
        out,
        "(more wavelengths -> fewer inner-dimension tiles -> lower latency; the\n\
         robustness to dispersion shown in Fig. 3/14 is what makes this scaling safe)"
    )
    .unwrap();
    out
}

/// Ablation: analog temporal-accumulation depth (paper uses depth 3).
pub fn ext_accum() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Ablation: analog temporal accumulation depth (A/D fires once per window)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>7} {:>14} {:>16} {:>14}",
        "depth", "ADC power (W)", "ADC energy (mJ)", "total (mJ)"
    )
    .unwrap();
    let model = TransformerConfig::deit_tiny();
    let mut prev_adc = f64::INFINITY;
    for depth in [1u32, 2, 3, 4, 6, 8] {
        let mut cfg = ArchConfig::lt_base(8); // 8-bit: ADC cost is visible
        cfg.opts.analog_temporal_accum = depth > 1;
        cfg.opts.temporal_accum_depth = depth;
        let power = PowerBreakdown::for_config(&cfg);
        let r = Simulator::new(cfg).run_model(&model);
        writeln!(
            out,
            "{depth:>7} {:>14.3} {:>16.4} {:>14.3}",
            power.adc.value(),
            r.all.energy.adc.value(),
            r.all.energy.total().value()
        )
        .unwrap();
        assert!(r.all.energy.adc.value() <= prev_adc + 1e-12);
        prev_adc = r.all.energy.adc.value();
    }
    writeln!(
        out,
        "(each extra accumulation step divides conversions; returns diminish once\n\
         the ADC stops being a bottleneck - the paper picks depth 3)"
    )
    .unwrap();
    out
}

/// Heterogeneous core search (paper Section VI-A): dense DeiT vs a
/// decode attention trace prefer very different geometries.
pub fn ext_search() -> String {
    let mut out = String::new();
    let budget = 120.0;

    writeln!(
        out,
        "Core-geometry search (area budget {budget} mm^2, N_lambda = 12)"
    )
    .unwrap();
    writeln!(out, "\ndense DeiT-T trace:").unwrap();
    let dense = TransformerConfig::deit_tiny().gemm_trace();
    writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>12} {:>8}",
        "core", "area", "latency(ms)", "EDP", "util"
    )
    .unwrap();
    for c in search_core_geometry(&dense, budget, 12, 4).iter().take(5) {
        writeln!(
            out,
            "{:<16} {:>10.1} {:>12.5} {:>12.5} {:>7.0}%",
            c.config.name,
            c.area_mm2,
            c.latency_ms,
            c.edp,
            c.utilization * 100.0
        )
        .unwrap();
    }

    writeln!(
        out,
        "\ndecode attention trace (GPT-like q.K^T / a.V against a 512-token KV, m = 1):"
    )
    .unwrap();
    let decode: Vec<_> = DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1)
        .gemm_trace()
        .into_iter()
        .filter(|op| op.dynamics() == lt_workloads::OperandDynamics::BothDynamic)
        .collect();
    writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>12} {:>8}",
        "core", "area", "latency(ms)", "EDP", "util"
    )
    .unwrap();
    for c in search_core_geometry(&decode, budget, 12, 4).iter().take(5) {
        writeln!(
            out,
            "{:<16} {:>10.1} {:>12.6} {:>12.6} {:>7.0}%",
            c.config.name,
            c.area_mm2,
            c.latency_ms,
            c.edp,
            c.utilization * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "(dense GEMMs want a big square core; m = 1 decode wants the paper's\n\
         narrow-Nh vector-matrix engine - heterogeneous DPTCs cover both)"
    )
    .unwrap();
    out
}

/// Quantitative PCM-crossbar evaluation (Table I row 2, not in the paper's
/// numeric tables).
pub fn ext_pcm() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "PCM crossbar vs LT-B on DeiT-T (4-bit) - quantifying Table I row 2"
    )
    .unwrap();
    let model = TransformerConfig::deit_tiny();
    let pcm = PcmAccelerator::paper_matched(4).run_model(&model);
    let lt = Simulator::new(ArchConfig::lt_base(4)).run_model(&model);
    writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>14}",
        "module", "PCM E (mJ)", "PCM L (ms)", "write-stall %"
    )
    .unwrap();
    for (name, r) in [("MHA", &pcm.mha), ("FFN", &pcm.ffn), ("All", &pcm.all)] {
        writeln!(
            out,
            "{:<8} {:>12.3} {:>12.4} {:>13.0}%",
            name,
            r.energy.value(),
            r.latency.value(),
            r.reconfig_latency.value() / r.latency.value() * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "vs LT-B: {:.1}x energy, {:.0}x latency",
        pcm.all.energy.value() / lt.all.energy.total().value(),
        pcm.all.latency.value() / lt.all.latency.value()
    )
    .unwrap();
    writeln!(
        out,
        "(non-volatile cells avoid MRR-style locking power, but runtime PCM writes\n\
         stall attention and the 4-pass positive-only decomposition taxes everything -\n\
         consistent with Table I scoring PCM 'no' on both dynamic and full-range MM)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_scaling_reduces_latency() {
        let t = ext_lambda();
        assert!(t.contains("112"));
    }

    #[test]
    fn accumulation_depth_cuts_adc_energy() {
        let t = ext_accum();
        assert!(t.contains("depth 3"));
    }

    #[test]
    fn search_reports_both_traces() {
        let t = ext_search();
        assert!(t.contains("dense DeiT-T trace"));
        assert!(t.contains("decode attention trace"));
    }

    #[test]
    fn pcm_report_quantifies_stalls() {
        let t = ext_pcm();
        assert!(t.contains("write-stall"));
        assert!(t.contains("vs LT-B"));
    }
}
