//! SLO serving experiment: the deterministic event-loop frontend
//! ([`SloFrontend`]) over a fixed bursty mixed-class workload, run
//! twice — whole-prompt prefill vs. chunked prefill — so the latency
//! percentile table shows what chunking buys (bounded inter-token
//! gaps) and what it costs (later first tokens for long prompts).
//!
//! Everything here is simulated time on a seeded workload: the whole
//! report is a pure function of the model weights and the loadgen
//! seed, which is why `BENCH_repro.json`'s `serving` section gates
//! every field (no `_us` exemptions needed — there is no wall-clock).

use lt_arch::{ArchConfig, Simulator};
use lt_core::{GaussianSampler, NativeBackend};
use lt_nn::decode::{DecoderConfig, DecoderLm};
use lt_nn::serve::decode::DecodeServeConfig;
use lt_nn::serve::lifecycle::{RequestOutcome, ServingReport, SloFrontend};
use lt_nn::serve::sched::KvServeConfig;
use lt_runtime::loadgen::LoadgenConfig;

/// The fixed scenario's chunk size in prompt tokens.
pub const PREFILL_CHUNK_TOKENS: usize = 4;

/// Both runs of the fixed scenario, for the text report and the JSON
/// section.
#[derive(Debug, Clone)]
pub struct SloServingReport {
    /// Requests in the workload trace.
    pub requests: usize,
    /// Loadgen seed.
    pub seed: u64,
    /// Whole-prompt-prefill run.
    pub unchunked: ServingReport,
    /// Chunked-prefill run ([`PREFILL_CHUNK_TOKENS`]).
    pub chunked: ServingReport,
}

/// Runs the fixed open-loop scenario: `requests` bursty mixed-class
/// arrivals ([`LoadgenConfig::smoke`], seed 29) through the tiny
/// decoder LM on the exact backend, once unchunked and once with
/// chunked prefill. Panics if the two runs' token streams differ —
/// chunking must never change *what* is generated, only *when*.
pub fn measure(requests: usize) -> SloServingReport {
    let seed = 29;
    let trace = LoadgenConfig::smoke(seed, requests).generate();
    let mut rng = GaussianSampler::new(5);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let arch = ArchConfig::lt_base(8);
    let sim = Simulator::new(arch.clone());

    let config = |chunk: usize| DecodeServeConfig {
        max_active: 4,
        arch: arch.clone(),
        kv: KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        },
        prefill_chunk_tokens: chunk,
        ..DecodeServeConfig::default()
    };

    let (rec_u, unchunked) =
        SloFrontend::new(&model, &sim, NativeBackend, &config(0)).run_open(&trace);
    let (rec_c, chunked) =
        SloFrontend::new(&model, &sim, NativeBackend, &config(PREFILL_CHUNK_TOKENS))
            .run_open(&trace);
    for (u, c) in rec_u.iter().zip(&rec_c) {
        if u.outcome == RequestOutcome::Completed && c.outcome == RequestOutcome::Completed {
            assert_eq!(
                u.tokens, c.tokens,
                "chunked prefill changed request {}'s reply",
                u.id
            );
        }
    }
    SloServingReport {
        requests,
        seed,
        unchunked,
        chunked,
    }
}

/// `repro serve` — the latency percentile table for the fixed
/// 24-request scenario.
pub fn serve() -> String {
    render(&measure(24))
}

/// Renders a measured scenario as the latency percentile table
/// (shared by `repro serve` and the `serving_slo` example).
pub fn render(r: &SloServingReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "SLO serving frontend: {} open-loop bursty arrivals (loadgen seed {}),\n\
         tiny decoder LM on LT-B 8-bit, max_active 4; all times are simulated.\n\n",
        r.requests, r.seed
    ));
    out.push_str(&format!(
        "{:<28}{:>16}{:>16}\n",
        "metric",
        "unchunked",
        format!("chunked({PREFILL_CHUNK_TOKENS})")
    ));
    let row = |label: &str, a: u64, b: u64| format!("{label:<28}{a:>16}{b:>16}\n");
    let (u, c) = (&r.unchunked, &r.chunked);
    out.push_str(&row("completed", u.completed as u64, c.completed as u64));
    out.push_str(&row("rejected", u.rejected as u64, c.rejected as u64));
    out.push_str(&row("failed", u.failed as u64, c.failed as u64));
    out.push_str(&row(
        "deadline hits",
        u.deadline_hits as u64,
        c.deadline_hits as u64,
    ));
    out.push_str(&row(
        "deadline misses",
        u.deadline_misses as u64,
        c.deadline_misses as u64,
    ));
    out.push_str(&row("ttft p50 (ps)", u.ttft_ps.p50, c.ttft_ps.p50));
    out.push_str(&row("ttft p95 (ps)", u.ttft_ps.p95, c.ttft_ps.p95));
    out.push_str(&row("ttft p99 (ps)", u.ttft_ps.p99, c.ttft_ps.p99));
    out.push_str(&row("ttft max (ps)", u.ttft_ps.max, c.ttft_ps.max));
    out.push_str(&row("itl p50 (ps)", u.itl_ps.p50, c.itl_ps.p50));
    out.push_str(&row("itl p95 (ps)", u.itl_ps.p95, c.itl_ps.p95));
    out.push_str(&row("itl p99 (ps)", u.itl_ps.p99, c.itl_ps.p99));
    out.push_str(&row("itl max (ps)", u.itl_ps.max, c.itl_ps.max));
    out.push_str(&row(
        "generated tokens",
        u.generated_tokens,
        c.generated_tokens,
    ));
    out.push_str(&row("elapsed (ps)", u.elapsed_ps, c.elapsed_ps));
    out.push_str(&row("tokens/s", u.tokens_per_s, c.tokens_per_s));
    out.push_str(&row(
        "goodput tokens/s",
        u.goodput_tokens_per_s,
        c.goodput_tokens_per_s,
    ));
    out.push_str(&row("preemptions", u.preemptions, c.preemptions));
    out.push_str(&row("decode ticks", u.ticks, c.ticks));
    out.push_str(
        "\nchunked prefill trades first-token latency of long prompts for a\n\
         bounded worst-case inter-token gap; token streams are bit-identical.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_fixed_scenario_is_deterministic() {
        let a = measure(8);
        let b = measure(8);
        assert_eq!(a.unchunked, b.unchunked);
        assert_eq!(a.chunked, b.chunked);
        assert_eq!(
            a.unchunked.completed + a.unchunked.rejected + a.unchunked.failed,
            8
        );
        assert!(a.unchunked.completed > 0);
    }
}
