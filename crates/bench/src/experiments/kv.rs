//! Paged-KV memory-pressure experiment: a starved block pool serving
//! more sessions than it can hold resident, with prefix sharing on.
//!
//! Drives the synchronous [`KvScheduler`] (the same engine behind
//! `DecodeServer`'s workers) over a fixed request mix with duplicated
//! prompts, then replays every decode-step trace through the tile
//! scheduler to split the HBM bandwidth stalls into KV traffic vs.
//! everything else. All reported numbers are deterministic (exact
//! backend, fixed submission order), so `BENCH_repro.json` gates them.

use lt_arch::{ArchConfig, Simulator};
use lt_core::trace::{NonGemmKind, Op};
use lt_core::{GaussianSampler, NativeBackend};
use lt_nn::decode::{DecoderConfig, DecoderLm, SessionConfig};
use lt_nn::kv::PreemptPolicy;
use lt_nn::serve::decode::DecodeRequest;
use lt_nn::serve::sched::{KvSchedStats, KvScheduler, KvServeConfig};

/// Everything the pressure run measured; consumed by both the `repro
/// kv` text report and the `BENCH_repro.json` `kv` section.
#[derive(Debug, Clone)]
pub struct KvPressureReport {
    /// Blocks in the (deliberately starved) pool.
    pub pool_blocks: usize,
    /// Tokens per KV block.
    pub block_tokens: usize,
    /// Sessions submitted.
    pub sessions: usize,
    /// Sessions that completed (must equal `sessions`).
    pub served: usize,
    /// Scheduler counters at completion.
    pub stats: KvSchedStats,
    /// HBM bytes moved by KV append/read ops across all decode steps.
    pub kv_hbm_bytes: f64,
    /// HBM bandwidth-stall time attributable to KV ops (ms).
    pub kv_bandwidth_stall_ms: f64,
    /// Total HBM bandwidth-stall time across the decode steps (ms).
    pub bandwidth_stall_ms: f64,
}

impl KvPressureReport {
    /// Preemptions per scheduler tick.
    pub fn preemption_rate(&self) -> f64 {
        self.stats.preemptions as f64 / (self.stats.ticks as f64).max(1.0)
    }

    /// Share of decode bandwidth stalls caused by KV-cache traffic.
    pub fn kv_bandwidth_stall_frac(&self) -> f64 {
        if self.bandwidth_stall_ms == 0.0 {
            0.0
        } else {
            self.kv_bandwidth_stall_ms / self.bandwidth_stall_ms
        }
    }
}

/// Runs the fixed pressure scenario: 12 sessions (3 distinct prompts,
/// each submitted 4 times) through a pool one block above the legal
/// minimum, LT-B 8-bit, block size 4, swap-out preemption, prefix
/// sharing on.
pub fn measure() -> KvPressureReport {
    let mut rng = GaussianSampler::new(17);
    let model_cfg = DecoderConfig::tiny();
    let model = DecoderLm::new(model_cfg, &mut rng);
    let arch = ArchConfig::lt_base(8);
    let sim = Simulator::new(arch.clone());

    let kv = KvServeConfig {
        block_tokens: 4,
        pool_blocks: model_cfg.max_seq.div_ceil(4) + 2,
        prefix_sharing: true,
        preempt: PreemptPolicy::SwapOut,
    };
    let session_config = SessionConfig {
        kv_bits: arch.precision_bits,
        ..SessionConfig::default()
    };
    let mut sched = KvScheduler::new(&model, &sim, NativeBackend, session_config, kv, 16);

    let prompts: [&[usize]; 3] = [
        &[3, 1, 4, 1, 5, 9, 2, 6],
        &[2, 7, 1, 8],
        &[0, 5, 5, 0, 2, 5],
    ];
    let sessions = 12;
    for ticket in 0..sessions as u64 {
        sched.submit(
            ticket,
            DecodeRequest {
                prompt: prompts[ticket as usize % prompts.len()].to_vec(),
                max_new_tokens: 10,
            },
        );
    }

    let bits = arch.precision_bits as u64;
    let mut served = 0;
    let (mut kv_bytes, mut kv_stall, mut bw_stall) = (0.0f64, 0.0f64, 0.0f64);
    while sched.has_work() {
        let Some(outcome) = sched.tick() else {
            continue;
        };
        for trace in &outcome.step_traces {
            let s = sim.schedule_trace(trace, sim.config().dataflow);
            for (op, r) in trace.ops().iter().zip(&s.per_op) {
                let stall = r.stalls.bandwidth.value();
                bw_stall += stall;
                if let Op::NonGemm { kind, elems } = op {
                    if matches!(kind, NonGemmKind::KvAppend | NonGemmKind::KvRead) {
                        kv_stall += stall;
                        kv_bytes += (elems * bits) as f64 / 8.0;
                    }
                }
            }
        }
        served += sched.drain_finished().len();
        assert!(sched.drain_failed().is_empty(), "no request may fail");
    }

    KvPressureReport {
        pool_blocks: kv.pool_blocks,
        block_tokens: kv.block_tokens,
        sessions,
        served,
        stats: sched.stats().clone(),
        kv_hbm_bytes: kv_bytes,
        kv_bandwidth_stall_ms: kv_stall,
        bandwidth_stall_ms: bw_stall,
    }
}

/// The `kv` experiment: paged-KV pressure metrics as a text report.
pub fn kv() -> String {
    let r = measure();
    let s = &r.stats;
    format!(
        "Paged KV-cache under memory pressure (LT-B 8-bit, swap-out, prefix sharing on)\n\
         pool: {} blocks x {} tokens; {} sessions submitted, {} served\n\n\
         residency   peak {} sessions resident on the starved pool\n\
         preemption  {} preemptions / {} resumes over {} ticks (rate {:.3}/tick)\n\
         swap        {} elems out, {} elems back in (bit-exact restore)\n\
         sharing     {} prefix hits saved {} blocks / {} tokens of writes\n\
         kv traffic  {:.3} MB over HBM; {:.1}% of decode bandwidth stalls\n\
         decoded     {} tokens\n",
        r.pool_blocks,
        r.block_tokens,
        r.sessions,
        r.served,
        s.peak_resident_sessions,
        s.preemptions,
        s.resumes,
        s.ticks,
        r.preemption_rate(),
        s.swapped_out_elems,
        s.swapped_in_elems,
        s.prefix_hits,
        s.prefix_shared_blocks,
        s.prefix_shared_tokens,
        r.kv_hbm_bytes / 1e6,
        r.kv_bandwidth_stall_frac() * 100.0,
        s.decoded_tokens,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_starved_pool_exercises_every_metric() {
        let r = measure();
        assert_eq!(r.served, r.sessions, "every session must complete");
        assert!(r.stats.preemptions > 0, "the pool must be under pressure");
        assert_eq!(r.stats.preemptions, r.stats.resumes);
        assert!(r.stats.peak_resident_sessions >= 2);
        assert!(r.stats.prefix_hits > 0, "duplicate prompts must share");
        assert!(r.stats.prefix_shared_blocks > 0);
        assert!(r.kv_hbm_bytes > 0.0, "KV traffic must reach the HBM model");
        let frac = r.kv_bandwidth_stall_frac();
        assert!(
            (0.0..=1.0).contains(&frac) && frac > 0.0,
            "KV stall share must be a positive fraction, got {frac}"
        );
    }

    #[test]
    fn the_text_report_names_the_headline_numbers() {
        let out = kv();
        for key in ["preemption", "sharing", "kv traffic", "bit-exact"] {
            assert!(out.contains(key), "missing {key}");
        }
    }

    #[test]
    fn the_run_is_deterministic() {
        let a = measure();
        let b = measure();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.kv_hbm_bytes, b.kv_hbm_bytes);
        assert_eq!(a.kv_bandwidth_stall_ms, b.kv_bandwidth_stall_ms);
    }
}
