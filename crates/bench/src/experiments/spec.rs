//! Speculative-decoding experiment: does draft-k speculation beat
//! plain per-token decode in *replayed target-model cycles per
//! generated token* on a bandwidth-starved photonic core?
//!
//! Drives the synchronous [`KvScheduler`] in speculative mode over a
//! fixed request mix at batch 1 and batch 8, sweeping k∈{0,2,4,8}
//! (k=0 is the plain baseline). Each tick's verify traces are merged
//! with [`Trace::batch_rows_ragged`] and replayed through the tile
//! scheduler — exactly the costing the serving frontend uses — while
//! the draft model's traces are replayed *separately*, so the draft
//! overhead is itemized, never hidden inside the target's win.
//!
//! The target is the tiny validation decoder with its deep blocks
//! tapered ([`DecoderLm::taper_deep_blocks`], gain [`TAPER_GAIN`]): a
//! random-init model has none of a trained LM's layer-wise refinement,
//! so the taper is the documented synthetic stand-in that gives the
//! self-speculative draft (the untapered first half of the stack) a
//! realistic greedy-agreement rate. Bit-identity of the output stream
//! holds at any gain; only the *economics* depend on it, and the
//! measured acceptance rate is reported next to every cycle count.
//!
//! Everything runs on the exact backend with fixed seeds, so all
//! fields are deterministic and `BENCH_repro.json`'s `speculation`
//! section gates them.

use lt_arch::{ArchConfig, Simulator};
use lt_core::trace::Trace;
use lt_core::{GaussianSampler, NativeBackend};
use lt_nn::decode::{DecoderConfig, DecoderLm, SessionConfig};
use lt_nn::serve::decode::DecodeRequest;
use lt_nn::serve::sched::{KvScheduler, KvServeConfig};

/// The swept speculation depths; `0` is the plain-decode baseline.
pub const SPEC_KS: [usize; 4] = [0, 2, 4, 8];

/// Residual gain applied to the target's deep (non-draft) blocks so
/// the random-init model exhibits a trained-LM-like draft agreement.
pub const TAPER_GAIN: f32 = 0.25;

/// Tokens each session generates.
pub const MAX_NEW_TOKENS: usize = 24;

/// One (batch, k) cell of the sweep: scheduler counters plus the
/// tick-merged replay split into target vs. draft work.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRow {
    /// Speculation depth (`0` = plain decode).
    pub k: usize,
    /// Concurrent sessions.
    pub batch: usize,
    /// Decode ticks the scheduler ran.
    pub ticks: u64,
    /// Tokens generated across all sessions.
    pub decoded_tokens: u64,
    /// Replayed cycles of the target model's tick-batched decode work
    /// (plain steps at k=0, batched verify passes otherwise).
    pub target_cycles: u64,
    /// Replayed cycles of the draft model's proposal passes (0 at k=0).
    pub draft_cycles: u64,
    /// Draft tokens proposed.
    pub proposed: u64,
    /// Draft tokens the target agreed with.
    pub accepted: u64,
    /// HBM bandwidth-stall time inside the target's decode windows (ms).
    pub bandwidth_stall_ms: f64,
    /// Total latency of the target's decode windows (ms).
    pub latency_ms: f64,
}

impl SpecRow {
    /// Target-model cycles per generated token — the headline metric.
    pub fn target_cycles_per_token(&self) -> f64 {
        self.target_cycles as f64 / (self.decoded_tokens as f64).max(1.0)
    }

    /// Draft-model cycles per generated token (the itemized overhead).
    pub fn draft_cycles_per_token(&self) -> f64 {
        self.draft_cycles as f64 / (self.decoded_tokens as f64).max(1.0)
    }

    /// Target + draft cycles per generated token.
    pub fn total_cycles_per_token(&self) -> f64 {
        self.target_cycles_per_token() + self.draft_cycles_per_token()
    }

    /// Fraction of draft proposals the target accepted (0 at k=0).
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }

    /// Share of the target's decode windows stalled on HBM bandwidth.
    pub fn bandwidth_stall_frac(&self) -> f64 {
        if self.latency_ms == 0.0 {
            0.0
        } else {
            self.bandwidth_stall_ms / self.latency_ms
        }
    }
}

/// The full sweep, consumed by `repro spec` and the JSON section.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecSweepReport {
    /// The k sweep at batch 1, in [`SPEC_KS`] order.
    pub batch1: Vec<SpecRow>,
    /// The k sweep at batch 8, in [`SPEC_KS`] order.
    pub batch8: Vec<SpecRow>,
}

impl SpecSweepReport {
    /// The acceptance-criterion headline: plain-decode target cycles
    /// per token over speculative target cycles per token at batch 1,
    /// k=4 (draft overhead itemized separately, by construction).
    pub fn b1_k4_target_reduction(&self) -> f64 {
        let base = &self.batch1[0];
        let spec = self
            .batch1
            .iter()
            .find(|r| r.k == 4)
            .expect("k=4 is in the sweep");
        base.target_cycles_per_token() / spec.target_cycles_per_token()
    }
}

/// Eight distinct prompts (first `batch` are used) over the tiny
/// decoder's 16-symbol vocabulary.
const PROMPTS: [&[usize]; 8] = [
    &[3, 1, 4, 1, 5, 9],
    &[2, 7, 1, 8, 2, 8, 1, 8],
    &[1, 6, 1, 8, 0],
    &[14, 2, 13, 5, 6, 2, 3],
    &[0, 5, 5, 0, 2, 5],
    &[9, 8, 9, 6, 2, 6, 5, 3],
    &[11, 11, 7, 4],
    &[12, 0, 10, 3, 15, 1],
];

/// Runs one (batch, k) cell: `batch` sessions through the tapered tiny
/// decoder on a roomy pool, LT-B 8-bit replay, exact backend.
fn measure_cell(batch: usize, k: usize) -> SpecRow {
    let mut rng = GaussianSampler::new(11);
    let mut model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    model.taper_deep_blocks(TAPER_GAIN);
    let arch = ArchConfig::lt_base(8);
    let sim = Simulator::new(arch.clone());

    let kv = KvServeConfig {
        block_tokens: 4,
        pool_blocks: 128, // roomy: the sweep measures compute, not pressure
        ..KvServeConfig::default()
    };
    let session_config = SessionConfig {
        kv_bits: arch.precision_bits,
        ..SessionConfig::default()
    };
    let mut sched = KvScheduler::new(&model, &sim, NativeBackend, session_config, kv, batch);
    if k > 0 {
        sched = sched.with_speculation(k);
    }
    for ticket in 0..batch as u64 {
        sched.submit(
            ticket,
            DecodeRequest {
                prompt: PROMPTS[ticket as usize].to_vec(),
                max_new_tokens: MAX_NEW_TOKENS,
            },
        );
    }

    let (mut target_cycles, mut draft_cycles) = (0u64, 0u64);
    let (mut bw_stall, mut latency) = (0.0f64, 0.0f64);
    while sched.has_work() {
        let Some(outcome) = sched.tick() else {
            continue;
        };
        if !outcome.step_traces.is_empty() {
            // The same tick-merge the serving frontend costs: exact
            // row-stacking for plain steps, ragged (padding charged)
            // for mixed-context verify blocks.
            let merged = if k > 0 {
                Trace::batch_rows_ragged(&outcome.step_traces).coalesce()
            } else {
                Trace::batch_rows(&outcome.step_traces).coalesce()
            };
            let r = sim.run_trace(&merged);
            target_cycles += r.cycles;
            bw_stall += r.stalls.bandwidth.value();
            latency += r.latency.value();
        }
        let drafts: Vec<&Trace> = outcome
            .draft_traces
            .iter()
            .filter(|t| !t.is_empty())
            .collect();
        if !drafts.is_empty() {
            let merged = Trace::batch_rows_ragged(drafts).coalesce();
            draft_cycles += sim.run_trace(&merged).cycles;
        }
        sched.drain_finished();
        assert!(sched.drain_failed().is_empty(), "no request may fail");
    }

    let stats = sched.stats();
    SpecRow {
        k,
        batch,
        ticks: stats.ticks,
        decoded_tokens: stats.decoded_tokens,
        target_cycles,
        draft_cycles,
        proposed: stats.spec.proposed,
        accepted: stats.spec.accepted,
        bandwidth_stall_ms: bw_stall,
        latency_ms: latency,
    }
}

/// Runs the full fixed sweep: k∈[`SPEC_KS`] at batch 1 and batch 8.
pub fn measure() -> SpecSweepReport {
    let sweep = |batch| SPEC_KS.iter().map(|&k| measure_cell(batch, k)).collect();
    SpecSweepReport {
        batch1: sweep(1),
        batch8: sweep(8),
    }
}

/// `repro spec` — the per-k cycles-per-token table at both batch
/// sizes, with the batch-1 k=4 headline reduction.
pub fn spec() -> String {
    render(&measure())
}

/// Renders a measured sweep as the per-k table (shared by `repro spec`
/// and the `llm_speculative` example's summary).
pub fn render(r: &SpecSweepReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Speculative decoding sweep: tapered tiny decoder (deep-block gain {TAPER_GAIN}),\n\
         self-speculative draft (first half of the stack), {MAX_NEW_TOKENS} tokens/session,\n\
         LT-B 8-bit replay, exact backend. k=0 is the plain-decode baseline;\n\
         target and draft cycles are replayed and itemized separately.\n"
    ));
    for (batch, rows) in [(1usize, &r.batch1), (8, &r.batch8)] {
        out.push_str(&format!(
            "\nbatch {batch}\n{:<4}{:>10}{:>14}{:>13}{:>13}{:>9}{:>10}\n",
            "k", "ticks", "target c/tok", "draft c/tok", "total c/tok", "accept", "bw stall"
        ));
        for row in rows.iter() {
            out.push_str(&format!(
                "{:<4}{:>10}{:>14.1}{:>13.1}{:>13.1}{:>9.3}{:>9.1}%\n",
                row.k,
                row.ticks,
                row.target_cycles_per_token(),
                row.draft_cycles_per_token(),
                row.total_cycles_per_token(),
                row.acceptance_rate(),
                row.bandwidth_stall_frac() * 100.0,
            ));
        }
    }
    out.push_str(&format!(
        "\nbatch-1 k=4 target-cycle reduction: {:.2}x (acceptance criterion: >= 1.5x)\n\
         token streams are bit-identical to plain greedy decode at every k.\n",
        r.b1_k4_target_reduction()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_sweep_meets_the_speculation_acceptance_criterion() {
        let r = measure();
        // Every cell decodes the full workload.
        for (batch, rows) in [(1usize, &r.batch1), (8, &r.batch8)] {
            for row in rows.iter() {
                assert_eq!(row.batch, batch);
                // The first token of each session is sampled by the
                // prefill, so decode steps produce `max_new - 1`.
                assert_eq!(row.decoded_tokens, (batch * (MAX_NEW_TOKENS - 1)) as u64);
                assert!(row.target_cycles > 0);
                if row.k == 0 {
                    assert_eq!(row.draft_cycles, 0, "plain decode drafts nothing");
                    assert_eq!(row.proposed, 0);
                } else {
                    assert!(row.draft_cycles > 0, "draft work must be itemized");
                    assert!(row.proposed > 0);
                    assert!(row.accepted <= row.proposed);
                    assert!(
                        row.acceptance_rate() > 0.1,
                        "tapered target must accept a useful share, got {}",
                        row.acceptance_rate()
                    );
                }
                let frac = row.bandwidth_stall_frac();
                assert!((0.0..=1.0).contains(&frac), "stall frac {frac}");
            }
        }
        // The headline gate: >= 1.5x fewer target cycles per token at
        // batch 1, k=4, with the draft itemized separately.
        let reduction = r.b1_k4_target_reduction();
        assert!(
            reduction >= 1.5,
            "batch-1 k=4 target-cycle reduction {reduction:.2}x < 1.5x"
        );
        // Speculation must also save whole scheduler ticks.
        let k4 = r.batch1.iter().find(|row| row.k == 4).unwrap();
        assert!(k4.ticks < r.batch1[0].ticks);
    }

    #[test]
    fn the_sweep_is_deterministic() {
        assert_eq!(measure(), measure());
    }

    #[test]
    fn the_text_report_names_the_headline_numbers() {
        let out = spec();
        for key in [
            "batch 1",
            "batch 8",
            "target c/tok",
            "draft c/tok",
            "accept",
            "reduction",
            "bit-identical",
        ] {
            assert!(out.contains(key), "missing {key}");
        }
    }
}
