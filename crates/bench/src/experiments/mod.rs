//! The experiment implementations, grouped by abstraction level.

pub mod accuracy;
pub mod comparison;
pub mod dataflow;
pub mod device_level;
pub mod extensions;
pub mod kv;
pub mod serving;
pub mod sparse;
pub mod spec;
pub mod system_level;

/// An experiment entry point.
pub type ExperimentFn = fn() -> String;

/// `(command, description, runner)` for every experiment.
pub fn all_experiments() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        (
            "table1",
            "Table I: PTC feature comparison",
            device_level::table1 as ExperimentFn,
        ),
        ("fig3", "Fig. 3: dispersion robustness", device_level::fig3),
        (
            "fig6",
            "Fig. 6: optical dot-product error",
            device_level::fig6,
        ),
        ("eq6", "Eq. 6: encoding-cost saving", device_level::eq6),
        ("eq10", "Eq. 10: FSR wavelength bound", device_level::eq10),
        (
            "svd",
            "MZI mapping cost (Jacobi SVD)",
            device_level::svd_mapping,
        ),
        (
            "table4",
            "Table IV: LT-B / LT-L configs",
            system_level::table4,
        ),
        ("fig7", "Fig. 7: area breakdown", system_level::fig7),
        ("fig8", "Fig. 8: power breakdown", system_level::fig8),
        ("fig9", "Fig. 9: core-size scaling", system_level::fig9),
        ("fig10", "Fig. 10: efficiency scaling", system_level::fig10),
        ("fig11", "Fig. 11: energy vs MRR/MZI", comparison::fig11),
        ("fig12", "Fig. 12: LT variant ablation", comparison::fig12),
        ("table5", "Table V: DeiT vs baselines", comparison::table5),
        (
            "fig13",
            "Fig. 13: cross-platform comparison",
            comparison::fig13,
        ),
        ("fig14", "Fig. 14: accuracy vs wavelengths", accuracy::fig14),
        (
            "fig15",
            "Fig. 15: accuracy vs encoding noise",
            accuracy::fig15,
        ),
        ("fig16", "Fig. 16: sparse attention support", sparse::fig16),
        (
            "ext-lambda",
            "Extension: wavelength scaling (Sec. V-B)",
            extensions::ext_lambda,
        ),
        (
            "ext-accum",
            "Extension: temporal-accumulation ablation (Sec. IV-C2)",
            extensions::ext_accum,
        ),
        (
            "ext-search",
            "Extension: heterogeneous core search (Sec. VI-A)",
            extensions::ext_search,
        ),
        (
            "dataflow",
            "Extension: dataflow (loop-order) sweep over the tile scheduler",
            dataflow::dataflow,
        ),
        (
            "kv",
            "Extension: paged KV cache under memory pressure (preemption, prefix sharing)",
            kv::kv,
        ),
        (
            "ext-pcm",
            "Extension: PCM crossbar quantified (Table I)",
            extensions::ext_pcm,
        ),
        (
            "serve",
            "Extension: SLO serving frontend (TTFT/ITL percentiles, chunked prefill)",
            serving::serve,
        ),
        (
            "spec",
            "Extension: speculative decoding cycles-per-token sweep (k x batch)",
            spec::spec,
        ),
    ]
}
