//! Accuracy and robustness experiments (Figs. 14-15).
//!
//! Trains the synthetic-task stand-ins for DeiT-T (4-bit vision) and
//! BERT-base (8-bit text) with QAT + noise-aware training, then evaluates
//! them with every GEMM routed through the noisy DPTC model while sweeping
//! the wavelength count (Fig. 14) and the encoding noise intensity
//! (Fig. 15). See DESIGN.md, Substitution 2.

use lt_dptc::NoiseModel;
use lt_nn::data;
use lt_nn::engine::{ExactEngine, PhotonicEngine};
use lt_nn::model::{ModelConfig, TextClassifier, VisionTransformer};
use lt_nn::quant::QuantConfig;
use lt_nn::train::{evaluate, train, TrainConfig};
use lt_photonics::noise::GaussianSampler;
use std::fmt::Write;

const EVAL_SAMPLES: usize = 200;

fn trained_vision(bits: u32) -> VisionTransformer {
    let mut rng = GaussianSampler::new(100);
    let mut vit = VisionTransformer::new(
        ModelConfig::tiny_vision(),
        data::NUM_PATCHES,
        data::PATCH_DIM,
        &mut rng,
    );
    let train_set = data::vision_dataset(768, 1);
    let cfg = TrainConfig {
        epochs: 12,
        ..TrainConfig::noise_aware(bits)
    };
    let _ = train(&mut vit, &train_set, &cfg);
    vit
}

fn trained_text(bits: u32) -> TextClassifier {
    let mut rng = GaussianSampler::new(200);
    let mut model = TextClassifier::new(
        ModelConfig::tiny_text(),
        data::VOCAB,
        data::SEQ_LEN,
        &mut rng,
    );
    let train_set = data::text_dataset(1536, 2);
    let cfg = TrainConfig {
        epochs: 16,
        lr: 2e-3,
        ..TrainConfig::noise_aware(bits)
    };
    let _ = train(&mut model, &train_set, &cfg);
    model
}

/// Fig. 14: accuracy vs WDM wavelength count (dispersion robustness).
pub fn fig14() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 14: accuracy vs #wavelengths (paper noise: mag 0.03, phase 2 deg)"
    )
    .unwrap();
    writeln!(
        out,
        "[substitution: synthetic 4-class vision task for DeiT-T/ImageNet,\n\
         synthetic copy-detection task for BERT-base/SST-2 - see DESIGN.md]"
    )
    .unwrap();

    // 4-bit vision model (the paper's DeiT-T panel).
    let mut vit = trained_vision(4);
    let vision_test = data::vision_dataset(EVAL_SAMPLES, 3);
    let quant = QuantConfig::low_bit(4);
    let digital = evaluate(&mut vit, &vision_test, &mut ExactEngine, quant);
    writeln!(
        out,
        "\n4-bit vision model (DeiT-T stand-in); digital reference {:.1}%",
        digital * 100.0
    )
    .unwrap();
    writeln!(out, "{:>12} {:>12}", "#wavelengths", "accuracy (%)").unwrap();
    let mut worst_drop: f64 = 0.0;
    for n_lambda in [6usize, 10, 14, 18, 22, 26] {
        let mut engine = PhotonicEngine::paper(4, n_lambda, 42);
        let acc = evaluate(&mut vit, &vision_test, &mut engine, quant);
        worst_drop = worst_drop.max(digital - acc);
        writeln!(out, "{n_lambda:>12} {:>12.1}", acc * 100.0).unwrap();
    }
    writeln!(
        out,
        "worst drop vs digital: {:.1} pts (paper: < 0.5%)",
        worst_drop * 100.0
    )
    .unwrap();

    // 8-bit text model (the paper's BERT-base panel).
    let mut text = trained_text(8);
    let text_test = data::text_dataset(EVAL_SAMPLES, 4);
    let quant = QuantConfig::low_bit(8);
    let digital = evaluate(&mut text, &text_test, &mut ExactEngine, quant);
    writeln!(
        out,
        "\n8-bit text model (BERT-base stand-in); digital reference {:.1}%",
        digital * 100.0
    )
    .unwrap();
    writeln!(out, "{:>12} {:>12}", "#wavelengths", "accuracy (%)").unwrap();
    let mut worst_drop: f64 = 0.0;
    for n_lambda in [6usize, 10, 14, 18, 22, 26] {
        let mut engine = PhotonicEngine::paper(8, n_lambda, 43);
        let acc = evaluate(&mut text, &text_test, &mut engine, quant);
        worst_drop = worst_drop.max(digital - acc);
        writeln!(out, "{n_lambda:>12} {:>12.1}", acc * 100.0).unwrap();
    }
    writeln!(
        out,
        "worst drop vs digital: {:.1} pts (paper: < 0.5%)",
        worst_drop * 100.0
    )
    .unwrap();
    out
}

/// Fig. 15: accuracy vs encoding magnitude / phase noise intensity
/// (4-bit vision model).
pub fn fig15() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 15: accuracy vs encoding noise (4-bit vision model)"
    )
    .unwrap();
    let mut vit = trained_vision(4);
    let test = data::vision_dataset(EVAL_SAMPLES, 3);
    let quant = QuantConfig::low_bit(4);
    let digital = evaluate(&mut vit, &test, &mut ExactEngine, quant);
    writeln!(out, "digital reference: {:.1}%", digital * 100.0).unwrap();

    writeln!(out, "\nmagnitude-noise sweep (phase fixed at 2 deg):").unwrap();
    writeln!(out, "{:>12} {:>12}", "sigma_mag", "accuracy (%)").unwrap();
    for sigma in [0.02, 0.04, 0.06, 0.08] {
        let noise = NoiseModel::paper_default().with_magnitude(sigma);
        let mut engine = PhotonicEngine::paper(4, 12, 44).with_noise(noise);
        let acc = evaluate(&mut vit, &test, &mut engine, quant);
        writeln!(out, "{sigma:>12.2} {:>12.1}", acc * 100.0).unwrap();
    }

    writeln!(out, "\nphase-noise sweep (magnitude fixed at 0.03):").unwrap();
    writeln!(out, "{:>12} {:>12}", "sigma_phase", "accuracy (%)").unwrap();
    for deg in [1.0, 3.0, 5.0, 7.0] {
        let noise = NoiseModel::paper_default().with_phase_degrees(deg);
        let mut engine = PhotonicEngine::paper(4, 12, 45).with_noise(noise);
        let acc = evaluate(&mut vit, &test, &mut engine, quant);
        writeln!(out, "{deg:>11.0}d {:>12.1}", acc * 100.0).unwrap();
    }
    writeln!(
        out,
        "(paper: noise-induced degradation within ~0.5% across these ranges)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // These are smoke tests; the full sweeps run via `repro`.
    #[test]
    fn vision_stand_in_trains_above_chance() {
        let mut vit = trained_vision(4);
        let test = data::vision_dataset(96, 3);
        let acc = evaluate(&mut vit, &test, &mut ExactEngine, QuantConfig::low_bit(4));
        assert!(acc > 0.55, "4-bit digital accuracy {acc}");
    }

    #[test]
    fn photonic_eval_close_to_digital_at_paper_point() {
        let mut vit = trained_vision(4);
        let test = data::vision_dataset(96, 3);
        let quant = QuantConfig::low_bit(4);
        let digital = evaluate(&mut vit, &test, &mut ExactEngine, quant);
        let mut engine = PhotonicEngine::paper(4, 12, 7);
        let optical = evaluate(&mut vit, &test, &mut engine, quant);
        assert!(
            optical >= digital - 0.12,
            "optical {optical} vs digital {digital}"
        );
    }
}
