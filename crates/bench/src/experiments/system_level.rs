//! System-level experiments: Table IV, Figs. 7-10.

use lt_arch::scaling::{fig10_sweep, fig9_sweep};
use lt_arch::{ArchConfig, AreaBreakdown, PowerBreakdown};
use std::fmt::Write;

/// Table IV: the LT-B and LT-L configurations with total area.
pub fn table4() -> String {
    let mut out = String::new();
    writeln!(out, "Table IV: Lightening-Transformer configurations").unwrap();
    writeln!(
        out,
        "{:<6} {:>3} {:>3} {:>3} {:>3} {:>4} {:>12} {:>12}",
        "name", "Nt", "Nc", "Nh", "Nv", "Nl", "SRAM (MB)", "area (mm^2)"
    )
    .unwrap();
    for cfg in [ArchConfig::lt_base(4), ArchConfig::lt_large(4)] {
        let area = AreaBreakdown::for_config(&cfg).total().value();
        writeln!(
            out,
            "{:<6} {:>3} {:>3} {:>3} {:>3} {:>4} {:>12} {:>12.1}",
            cfg.name,
            cfg.nt,
            cfg.nc,
            cfg.core.nh,
            cfg.core.nv,
            cfg.core.nlambda,
            cfg.global_sram_bytes / (1 << 20),
            area
        )
        .unwrap();
    }
    writeln!(out, "(paper: LT-B 60.3 mm^2, LT-L 112.82 mm^2)").unwrap();
    out
}

/// Fig. 7: itemized area breakdown of LT-B and LT-L.
pub fn fig7() -> String {
    let mut out = String::new();
    for cfg in [ArchConfig::lt_base(4), ArchConfig::lt_large(4)] {
        let area = AreaBreakdown::for_config(&cfg);
        writeln!(out, "Fig. 7: area breakdown of {}", cfg.name).unwrap();
        writeln!(out, "{area}").unwrap();
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "(paper: photonic core ~20%, memory ~25%, DAC ~25%; rest < 30%)"
    )
    .unwrap();
    out
}

/// Fig. 8: power breakdown of LT-B at 4-bit and 8-bit (plus LT-L totals).
pub fn fig8() -> String {
    let mut out = String::new();
    for bits in [4u32, 8] {
        let cfg = ArchConfig::lt_base(bits);
        let power = PowerBreakdown::for_config(&cfg);
        writeln!(out, "Fig. 8: power breakdown of LT-B at {bits}-bit").unwrap();
        writeln!(out, "{power}").unwrap();
        writeln!(out).unwrap();
    }
    let l4 = PowerBreakdown::for_config(&ArchConfig::lt_large(4))
        .total()
        .value();
    let l8 = PowerBreakdown::for_config(&ArchConfig::lt_large(8))
        .total()
        .value();
    writeln!(out, "LT-L totals: {l4:.2} W (4-bit), {l8:.2} W (8-bit)").unwrap();
    writeln!(
        out,
        "(paper: LT-B 14.75 W / 50.94 W; LT-L 28.06 W / 95.92 W; DACs > 50% at 8-bit)"
    )
    .unwrap();
    out
}

/// Fig. 9: single-core area / power / latency scaling, core size 8..32.
pub fn fig9() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 9: single 4-bit core scaling (no cross-tile sharing)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "N", "area (mm^2)", "power (W)", "optics (ps)", "EO/OE (ps)", "total (ps)"
    )
    .unwrap();
    for p in fig9_sweep() {
        writeln!(
            out,
            "{:>4} {:>12.1} {:>10.2} {:>12.1} {:>12.1} {:>12.1}",
            p.n,
            p.area_mm2,
            p.power_w,
            p.optics_ps,
            p.eo_oe_ps,
            p.latency_ps()
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: area 5.9 -> 49.3 mm^2, power 1.1 -> 17 W, latency 47 -> 106.4 ps)"
    )
    .unwrap();
    out
}

/// Fig. 10: performance / efficiency scaling of the optical computing part.
pub fn fig10() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 10: optical-part performance scaling (ADC/DAC excluded)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>12} {:>14}",
        "N", "TOPS", "TOPS/W", "TOPS/mm^2", "TOPS/W/mm^2"
    )
    .unwrap();
    for p in fig10_sweep() {
        writeln!(
            out,
            "{:>4} {:>10.1} {:>10.1} {:>12.2} {:>14.3}",
            p.n, p.tops, p.tops_per_w, p.tops_per_mm2, p.tops_per_w_per_mm2
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper trends: TOPS, TOPS/W, TOPS/mm^2 rise with N; TOPS/W/mm^2 falls)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_lists_both_configs() {
        let t = table4();
        assert!(t.contains("LT-B"));
        assert!(t.contains("LT-L"));
    }

    #[test]
    fn fig7_has_all_categories() {
        let t = fig7();
        for cat in ["photonic core", "DAC", "memory", "laser+comb", "TOTAL"] {
            assert!(t.contains(cat), "missing {cat}");
        }
    }

    #[test]
    fn fig8_shows_both_precisions() {
        let t = fig8();
        assert!(t.contains("4-bit"));
        assert!(t.contains("8-bit"));
        assert!(t.contains("laser"));
    }

    #[test]
    fn fig9_and_fig10_have_sweep_rows() {
        assert!(fig9().lines().count() >= 11);
        assert!(fig10().lines().count() >= 12);
    }
}
