//! Device- and circuit-level experiments (Table I, Fig. 3, Fig. 6,
//! Eq. 6, Eq. 10, and the SVD mapping-cost measurement).

use lt_baselines::comparison::{ptc_design_table, MappingCost, OperationType};
use lt_baselines::svd::{jacobi_svd, measure_mapping_seconds, reconstruct};
use lt_dptc::{DdotCircuit, Dptc, DptcConfig, NoiseModel, Quantizer};
use lt_photonics::noise::GaussianSampler;
use lt_photonics::units::{Nanometers, TeraHertz};
use lt_photonics::wdm::{max_channels_in_fsr, DispersionModel, WavelengthGrid};
use std::fmt::Write;

/// Table I: qualitative PTC design comparison.
pub fn table1() -> String {
    let mut out = String::new();
    writeln!(out, "Table I: PTC design comparison").unwrap();
    writeln!(
        out,
        "{:<20} {:>24} {:>24} {:>8} {:>5} {:>11} {:>11}",
        "design", "operand 1", "operand 2", "mapping", "op", "dynamic MM", "full range"
    )
    .unwrap();
    for d in ptc_design_table() {
        writeln!(
            out,
            "{:<20} {:>24} {:>24} {:>8} {:>5} {:>11} {:>11}",
            d.name,
            d.operand1.to_string(),
            d.operand2.to_string(),
            match d.mapping_cost {
                MappingCost::High => "High",
                MappingCost::Medium => "Medium",
                MappingCost::Low => "Low",
            },
            match d.operation {
                OperationType::Mm => "MM",
                OperationType::Mvm => "MVM",
            },
            if d.supports_dynamic_mm() { "yes" } else { "NO" },
            if d.supports_full_range_without_overhead() {
                "yes"
            } else {
                "NO"
            },
        )
        .unwrap();
    }
    out
}

/// Fig. 3: coupling factor and phase-shifter response across a
/// 25-wavelength DWDM sweep.
pub fn fig3() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 3: dispersion across 25 DWDM channels (0.4 nm spacing)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>12} {:>10} {:>12}",
        "lambda (nm)", "kappa", "phase (deg)"
    )
    .unwrap();
    let grid = WavelengthGrid::dwdm(25);
    let d = DispersionModel::paper();
    let mut max_kappa_rel = 0.0f64;
    let mut max_phase_err = 0.0f64;
    for &lambda in grid.wavelengths_nm() {
        let kappa = d.coupling_factor(lambda);
        let phase = d
            .phase_shift(-std::f64::consts::FRAC_PI_2, lambda)
            .to_degrees();
        max_kappa_rel = max_kappa_rel.max((kappa - 0.5).abs() / 0.5);
        max_phase_err = max_phase_err.max((phase + 90.0).abs());
        writeln!(out, "{lambda:>12.2} {kappa:>10.5} {phase:>12.3}").unwrap();
    }
    writeln!(
        out,
        "max relative kappa deviation: {:.2}% (paper: ~1.8%)",
        max_kappa_rel * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "max dispersion-induced phase error: {max_phase_err:.3} deg (paper: 0.28 deg)"
    )
    .unwrap();
    out
}

/// Fig. 6: circuit-level random length-12 dot products at the paper's
/// noise point, 4-bit and 8-bit.
pub fn fig6() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 6: optical simulation of random length-12 dot products"
    )
    .unwrap();
    writeln!(
        out,
        "(circuit-level DDot, sigma_mag = 0.03, sigma_phase = 2 deg, dispersion on)"
    )
    .unwrap();
    let circuit = DdotCircuit::paper(12);
    let nm = NoiseModel::paper_default();
    let mut rng = GaussianSampler::new(2024);
    for bits in [4u32, 8] {
        let q = Quantizer::new(bits);
        let trials = 2000;
        let mut ratios: Vec<f64> = Vec::with_capacity(trials);
        let mut err_sum = 0.0;
        for t in 0..trials {
            let x: Vec<f64> = (0..12)
                .map(|_| q.quantize_unit(rng.uniform_in(-1.0, 1.0)))
                .collect();
            let y: Vec<f64> = (0..12)
                .map(|_| q.quantize_unit(rng.uniform_in(-1.0, 1.0)))
                .collect();
            let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = circuit.dot_noisy(&x, &y, &nm, 7000 + t as u64);
            err_sum += (got - exact).abs();
            if exact.abs() > 0.25 {
                ratios.push(got / exact);
            }
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| ratios[((ratios.len() - 1) as f64 * p) as usize];
        let mean_err_pct = err_sum / trials as f64 / 12.0 * 100.0;
        writeln!(
            out,
            "{bits}-bit: sim/ideal ratio p5 {:.3}  median {:.3}  p95 {:.3}; mean |err|/N = {:.2}% (paper: {}%)",
            pct(0.05),
            pct(0.5),
            pct(0.95),
            mean_err_pct,
            if bits == 4 { "2.6" } else { "3.4" },
        )
        .unwrap();
    }
    out
}

/// Eq. 6: intra-core operand-sharing gain.
pub fn eq6() -> String {
    let mut out = String::new();
    writeln!(out, "Eq. 6: encoding cost per one-shot MM").unwrap();
    writeln!(
        out,
        "{:>4} {:>4} {:>4} {:>14} {:>14} {:>8}",
        "Nh", "Nv", "Nl", "shared", "unshared", "saving"
    )
    .unwrap();
    for (nh, nv, nl) in [
        (12, 12, 12),
        (8, 8, 8),
        (24, 24, 24),
        (12, 24, 12),
        (1, 12, 12),
    ] {
        let core = Dptc::new(DptcConfig::new(nh, nv, nl));
        let c = core.encoding_cost();
        writeln!(
            out,
            "{nh:>4} {nv:>4} {nl:>4} {:>14} {:>14} {:>7.2}x",
            c.shared,
            c.unshared,
            c.saving_factor()
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: Nh = Nv = Nl = 12 gives 12x less encoding cost)"
    )
    .unwrap();
    out
}

/// Eq. 10: how many DWDM channels fit inside the microdisk FSR.
pub fn eq10() -> String {
    let b = max_channels_in_fsr(TeraHertz(5.6), Nanometers(1550.0), Nanometers(0.4));
    format!(
        "Eq. 10: FSR = 5.6 THz around 1550 nm\n\
         lambda_l = {:.2} nm (paper: 1527.88), lambda_r = {:.2} nm (paper: 1572.76)\n\
         channels at 0.4 nm spacing: {} (paper: up to 112)\n",
        b.lambda_left_nm, b.lambda_right_nm, b.channels
    )
}

/// Measures the MZI baseline's per-tile operand-mapping cost with our own
/// Jacobi SVD, and relates it to the photonic cycle time.
pub fn svd_mapping() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "MZI operand mapping cost (one-sided Jacobi SVD, 12x12)"
    )
    .unwrap();
    // Correctness spot check first.
    let a: Vec<f64> = (0..144)
        .map(|i| ((i * 37 % 100) as f64 / 50.0) - 1.0)
        .collect();
    let svd = jacobi_svd(&a, 12, 12);
    let back = reconstruct(&svd, 12, 12);
    let max_err = a
        .iter()
        .zip(&back)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    writeln!(
        out,
        "reconstruction max error: {max_err:.2e} ({} sweeps)",
        svd.sweeps
    )
    .unwrap();
    let secs = measure_mapping_seconds(12, 200);
    let cycles = secs / 200e-12;
    writeln!(
        out,
        "measured SVD time: {:.1} us/tile = {:.0} photonic cycles at 5 GHz",
        secs * 1e6,
        cycles
    )
    .unwrap();
    writeln!(
        out,
        "(paper reports ~1.5 ms/tile incl. phase decomposition on a CPU; even our\n\
         optimized in-process SVD costs thousands of lost cycles per remap, and the\n\
         2 us MEMS programming adds 10,000 cycles on top - dynamic MM is infeasible)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_marks_dptc_as_the_only_full_solution() {
        let t = table1();
        assert!(t.contains("DPTC (ours)"));
        let dptc_line = t.lines().find(|l| l.contains("DPTC")).unwrap();
        assert_eq!(dptc_line.matches("yes").count(), 2);
    }

    #[test]
    fn fig3_reports_paper_deviations() {
        let t = fig3();
        assert!(t.contains("paper: ~1.8%"));
        assert!(t.lines().count() > 25, "one row per wavelength");
    }

    #[test]
    fn fig6_errors_in_paper_band() {
        let t = fig6();
        // Extract the mean errors and check they are low single digits.
        for line in t.lines().filter(|l| l.contains("mean |err|")) {
            let pct: f64 = line
                .split("mean |err|/N = ")
                .nth(1)
                .unwrap()
                .split('%')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(pct > 0.2 && pct < 6.0, "mean error {pct}%");
        }
    }

    #[test]
    fn eq6_shows_12x() {
        assert!(eq6().contains("12.00x"));
    }

    #[test]
    fn eq10_shows_112_channels() {
        assert!(eq10().contains("channels at 0.4 nm spacing: 112"));
    }

    #[test]
    fn svd_mapping_reports_microseconds() {
        let t = svd_mapping();
        assert!(t.contains("photonic cycles"));
        assert!(t.contains("reconstruction max error"));
    }
}
