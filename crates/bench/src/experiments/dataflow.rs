//! Dataflow sweep (the DxPTA-style design-space question): for every
//! paper benchmark, play its trace through the tile scheduler under
//! each [`DataflowPolicy`] and report cycles, utilization, HBM traffic,
//! and the stall breakdown — then name the best loop order.

use lt_arch::{ArchConfig, DataflowPolicy, Simulator, TraceSchedule};
use lt_core::Trace;
use lt_workloads::{DecodeTrace, TransformerConfig};

fn row(name: &str, sched: &TraceSchedule) -> String {
    let t = sched.total;
    format!(
        "  {name:<18} {:>10} cy  {:>5.1}% util  {:>8.2} MB HBM  \
         compute {:>5.1}%  bw-stall {:>5.1}%  fill {:>5.2}%  {:>10.3} us",
        t.cycles,
        t.utilization * 100.0,
        sched.hbm_bytes / 1e6,
        t.stalls.compute.value() / t.latency.value().max(1e-30) * 100.0,
        t.stalls.bandwidth.value() / t.latency.value().max(1e-30) * 100.0,
        t.stalls.fill.value() / t.latency.value().max(1e-30) * 100.0,
        t.latency.value() * 1e3,
    )
}

fn sweep(out: &mut String, title: &str, sim: &Simulator, trace: &Trace) {
    out.push_str(&format!("{title}\n"));
    let mut best: Option<(DataflowPolicy, f64)> = None;
    for policy in DataflowPolicy::ALL {
        let sched = sim.schedule_trace(trace, policy);
        out.push_str(&row(policy.name(), &sched));
        out.push('\n');
        let ms = sched.total.latency.value();
        if best.is_none_or(|(_, b)| ms < b) {
            best = Some((policy, ms));
        }
    }
    let (policy, _) = best.expect("three policies ran");
    out.push_str(&format!("  -> best dataflow: {policy}\n\n"));
}

/// The `dataflow` experiment: best-dataflow table per paper benchmark
/// (prefill on LT-B 4-bit) plus the autoregressive decode regime
/// (GPT2-small, context 512, batch 1 and 16, LT-B 8-bit).
pub fn dataflow() -> String {
    let mut out = String::from(
        "Dataflow sweep: every benchmark trace scheduled under each loop order.\n\
         Cycles are loop-order invariant; traffic, stalls, and wall-clock are not.\n\n",
    );
    let sim = Simulator::new(ArchConfig::lt_base(4));
    for model in TransformerConfig::paper_benchmarks() {
        sweep(
            &mut out,
            &format!("{} on LT-B 4-bit (prefill)", model.name),
            &sim,
            &model.trace(),
        );
    }
    let sim8 = Simulator::new(ArchConfig::lt_base(8));
    for batch in [1usize, 16] {
        let trace = DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, batch).op_trace();
        sweep(
            &mut out,
            &format!("GPT2-small decode ctx=512 batch={batch} on LT-B 8-bit"),
            &sim8,
            &trace,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_benchmark_and_policy() {
        let out = dataflow();
        for name in ["DeiT-T", "DeiT-S", "DeiT-B", "BERT-base", "BERT-large"] {
            assert!(out.contains(name), "missing {name}");
        }
        for policy in DataflowPolicy::ALL {
            assert!(out.contains(policy.name()), "missing {policy}");
        }
        assert!(out.contains("decode ctx=512 batch=16"));
        assert!(out.contains("best dataflow"));
    }
}
