//! Accelerator comparison experiments: Figs. 11-13 and Table V.

use lt_arch::{ArchConfig, Simulator};
use lt_baselines::{ElectronicPlatform, MrrAccelerator, MziAccelerator};
use lt_workloads::{GemmOp, OpKind, TransformerConfig};
use std::fmt::Write;

/// DeiT-T's attention score product (one layer, all heads) — the paper's
/// Fig. 11/12 attention workload.
fn deit_t_qk() -> GemmOp {
    GemmOp::new(OpKind::AttnQk, 197, 64, 197, 3)
}

/// DeiT-T's first FFN linear (one layer) — the Fig. 11/12 linear workload.
fn deit_t_ffn1() -> GemmOp {
    GemmOp::new(OpKind::Ffn1, 197, 192, 768, 1)
}

/// Fig. 11: energy comparison and breakdown vs MRR (attention) and
/// MRR + MZI (linear layer), all relative to `LT-crossbar-B`.
pub fn fig11() -> String {
    let mut out = String::new();
    let lt = Simulator::new(ArchConfig::lt_crossbar_base(4));
    let mrr = MrrAccelerator::paper_baseline(4);
    let mzi = MziAccelerator::paper_baseline(4);

    writeln!(out, "Fig. 11 (left): attention Q K^T of DeiT-T (4-bit)").unwrap();
    let lt_qk = lt.run_op(&deit_t_qk());
    let mrr_qk = mrr.run_op(&deit_t_qk());
    let base = lt_qk.energy.total().value();
    writeln!(out, "  LT-crossbar-B : 1.00 (= {base:.4} mJ)").unwrap();
    writeln!(
        out,
        "  MRR bank      : {:.2}x  (op1-mod/locking share {:.0}%)",
        mrr_qk.energy.value() / base,
        mrr_qk.op1_mod.value() / mrr_qk.energy.value() * 100.0
    )
    .unwrap();
    writeln!(out, "  (paper: MRR ~2.6x, locking > 40% of MRR total)").unwrap();

    writeln!(out).unwrap();
    writeln!(out, "Fig. 11 (right): first FFN linear of DeiT-T (4-bit)").unwrap();
    let lt_ffn = lt.run_op(&deit_t_ffn1());
    let mrr_ffn = mrr.run_op(&deit_t_ffn1());
    let mzi_ffn = mzi.run_static_op(&deit_t_ffn1());
    let base = lt_ffn.energy.total().value();
    writeln!(out, "  LT-crossbar-B : 1.00 (= {base:.4} mJ)").unwrap();
    writeln!(
        out,
        "  MRR bank      : {:.2}x",
        mrr_ffn.energy.value() / base
    )
    .unwrap();
    writeln!(
        out,
        "  MZI array     : {:.2}x  (laser share {:.0}%)",
        mzi_ffn.energy.value() / base,
        mzi_ffn.laser.value() / mzi_ffn.energy.value() * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "  (paper: MRR ~2.3x, MZI ~3.5x with laser > 75% of MZI total)"
    )
    .unwrap();
    out
}

/// Fig. 12: the LT variant ablation on the same two workloads,
/// relative to the full `LT-B`.
pub fn fig12() -> String {
    let mut out = String::new();
    let variants = [
        ("LT-B (full)", ArchConfig::lt_base(4)),
        ("LT-crossbar-B", ArchConfig::lt_crossbar_base(4)),
        ("LT-broadcast-B", ArchConfig::lt_broadcast_base(4)),
    ];
    let mrr = MrrAccelerator::paper_baseline(4);
    for (title, op) in [
        ("attention Q K^T", deit_t_qk()),
        ("FFN linear 1", deit_t_ffn1()),
    ] {
        writeln!(
            out,
            "Fig. 12: {title} of DeiT-T (4-bit), normalized to LT-B"
        )
        .unwrap();
        let base = Simulator::new(ArchConfig::lt_base(4))
            .run_op(&op)
            .energy
            .total()
            .value();
        for (name, cfg) in variants.iter() {
            let e = Simulator::new(cfg.clone())
                .run_op(&op)
                .energy
                .total()
                .value();
            writeln!(out, "  {name:<15}: {:.2}x", e / base).unwrap();
        }
        let e = mrr.run_op(&op).energy.value();
        writeln!(out, "  {:<15}: {:.2}x", "MRR bank", e / base).unwrap();
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "(paper order on attention: LT-B 1 < LT-crossbar ~2 < MRR ~5.3 < LT-broadcast ~6)"
    )
    .unwrap();
    out
}

/// Table V: energy / latency / EDP of MZI, MRR, and LT-B on DeiT-T and
/// DeiT-B at 4-bit and 8-bit, by module.
pub fn table5() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table V: comparison on DeiT (energy mJ, latency ms, EDP mJ*ms)"
    )
    .unwrap();
    for bits in [4u32, 8] {
        let mut ratio_energy = Vec::new();
        let mut ratio_latency = Vec::new();
        for model in [
            TransformerConfig::deit_tiny(),
            TransformerConfig::deit_base(),
        ] {
            let mzi = MziAccelerator::paper_baseline(bits).run_model(&model);
            let mrr = MrrAccelerator::paper_baseline(bits).run_model(&model);
            let lt = Simulator::new(ArchConfig::lt_base(bits)).run_model(&model);
            let lt_bare = Simulator::new(ArchConfig::lt_crossbar_base(bits)).run_model(&model);
            writeln!(out, "\n[{}-bit] {}", bits, model.name).unwrap();
            writeln!(
                out,
                "{:<6} | {:>9} {:>9} {:>10} | {:>9} {:>9} {:>10} | {:>9} {:>9} {:>9} {:>10}",
                "module",
                "MZI E",
                "MZI L",
                "MZI EDP",
                "MRR E",
                "MRR L",
                "MRR EDP",
                "LT E(w/o)",
                "LT E",
                "LT L",
                "LT EDP"
            )
            .unwrap();
            let rows = [
                ("MHA", &mzi.mha, &mrr.mha, &lt_bare.mha, &lt.mha),
                ("FFN", &mzi.ffn, &mrr.ffn, &lt_bare.ffn, &lt.ffn),
                ("All", &mzi.all, &mrr.all, &lt_bare.all, &lt.all),
            ];
            for (name, mzi_r, mrr_r, bare_r, lt_r) in rows {
                writeln!(
                    out,
                    "{:<6} | {:>9.3} {:>9.4} {:>10.3} | {:>9.3} {:>9.4} {:>10.4} | {:>9.3} {:>9.3} {:>9.5} {:>10.5}",
                    name,
                    mzi_r.energy.value(),
                    mzi_r.latency.value(),
                    mzi_r.edp(),
                    mrr_r.energy.value(),
                    mrr_r.latency.value(),
                    mrr_r.edp(),
                    bare_r.energy.total().value(),
                    lt_r.energy.total().value(),
                    lt_r.latency.value(),
                    lt_r.edp(),
                )
                .unwrap();
            }
            ratio_energy.push((
                mzi.all.energy.value() / lt.all.energy.total().value(),
                mrr.all.energy.value() / lt.all.energy.total().value(),
            ));
            ratio_latency.push((
                mzi.all.latency.value() / lt.all.latency.value(),
                mrr.all.latency.value() / lt.all.latency.value(),
            ));
        }
        let avg = |v: &[(f64, f64)], f: fn(&(f64, f64)) -> f64| {
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        writeln!(
            out,
            "\n[{}-bit] average ratios vs LT-B: MZI {:.1}x energy / {:.0}x latency; MRR {:.1}x energy / {:.1}x latency",
            bits,
            avg(&ratio_energy, |r| r.0),
            avg(&ratio_latency, |r| r.0),
            avg(&ratio_energy, |r| r.1),
            avg(&ratio_latency, |r| r.1),
        )
        .unwrap();
    }
    writeln!(
        out,
        "\n(paper 4-bit averages: MZI 8.0x / 678x, MRR 4.0x / 12.9x;\n\
         paper 8-bit averages: MZI 32.5x / 676x, MRR 2.7x / 12.8x)"
    )
    .unwrap();
    out
}

/// Fig. 13: cross-platform energy and FPS on the five paper benchmarks.
pub fn fig13() -> String {
    let mut out = String::new();
    writeln!(out, "Fig. 13: energy (mJ) and FPS across platforms").unwrap();
    let models = TransformerConfig::paper_benchmarks();
    writeln!(
        out,
        "{:<18} {:>14} {:>12} {:>12}",
        "platform", "model", "energy (mJ)", "FPS"
    )
    .unwrap();
    for model in &models {
        for p in ElectronicPlatform::fig13_platforms() {
            writeln!(
                out,
                "{:<18} {:>14} {:>12.2} {:>12.0}",
                p.name,
                model.name,
                p.energy(model).value(),
                p.fps(model)
            )
            .unwrap();
        }
        for (name, cfg) in [
            ("LT-B (4-bit)", ArchConfig::lt_base(4)),
            ("LT-B (8-bit)", ArchConfig::lt_base(8)),
            ("LT-L (4-bit)", ArchConfig::lt_large(4)),
            ("LT-L (8-bit)", ArchConfig::lt_large(8)),
        ] {
            let r = Simulator::new(cfg).run_model(model);
            writeln!(
                out,
                "{:<18} {:>14} {:>12.2} {:>12.0}",
                name,
                model.name,
                r.all.energy.total().value(),
                r.fps()
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "(paper: LT has the lowest energy everywhere - >300x vs CPU, ~6.6x vs GPU,\n\
         ~18x vs Edge TPU, ~20x vs FPGA DSAs - and the highest FPS, with 2-3 orders\n\
         of magnitude lower EDP)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_orders_designs_correctly() {
        let t = fig11();
        assert!(t.contains("LT-crossbar-B : 1.00"));
        // Extract the MRR attention multiplier and check it's > 1.5x.
        let line = t.lines().find(|l| l.contains("MRR bank      :")).unwrap();
        let x: f64 = line
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .split('x')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(x > 1.5, "MRR attention ratio {x}");
    }

    #[test]
    fn fig12_full_lt_is_cheapest() {
        let t = fig12();
        assert!(t.contains("LT-B (full)    : 1.00x"));
    }

    #[test]
    fn fig13_covers_all_benchmarks() {
        let t = fig13();
        for name in [
            "DeiT-T-224",
            "DeiT-S-224",
            "DeiT-B-224",
            "BERT-base-128",
            "BERT-large-320",
        ] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("LT-L (8-bit)"));
    }

    #[test]
    fn table5_reports_average_ratios() {
        let t = table5();
        assert!(t.contains("average ratios vs LT-B"));
        assert!(t.contains("[4-bit] DeiT-T-224"));
        assert!(t.contains("[8-bit] DeiT-B-224"));
    }
}
