//! Sparse attention support (Fig. 16, paper Section VI-A).

use lt_arch::{ArchConfig, Simulator};
use lt_workloads::{GemmOp, OpKind, WindowAttention};
use std::fmt::Write;

/// Fig. 16: blockified window attention mapped onto DPTC, with density
/// and energy/latency savings vs dense attention.
///
/// Block sizes aligned to the core geometry (multiples of `N = 12`) turn
/// the full density saving into real energy/latency gains; a misaligned
/// block size is included to demonstrate the low-utilization hazard the
/// paper's heterogeneous-core discussion addresses.
pub fn fig16() -> String {
    let mut out = String::new();
    writeln!(out, "Fig. 16: window local attention blockified onto DPTC").unwrap();
    writeln!(
        out,
        "{:>7} {:>7} {:>6} {:>9} {:>10} {:>12} {:>12}",
        "tokens", "window", "block", "density", "MACsaving", "energy gain", "latency gain"
    )
    .unwrap();
    let sim = Simulator::new(ArchConfig::lt_base(4));
    let head_dim = 64;
    let configs = [
        (192usize, 3usize, 24usize, true),
        (192, 5, 12, true),
        (384, 3, 36, true),
        (384, 7, 12, true),
        (192, 5, 16, false), // misaligned with the 12-wide crossbar
    ];
    for (tokens, window, block, aligned) in configs {
        let w = WindowAttention::new(tokens, window, block, head_dim);
        // Dense reference: full QK^T + AV for one head.
        let dense_qk = GemmOp::new(OpKind::AttnQk, tokens, head_dim, tokens, 1);
        let dense_av = GemmOp::new(OpKind::AttnAv, tokens, tokens, head_dim, 1);
        let mut dense = sim.run_op(&dense_qk);
        dense.merge(&sim.run_op(&dense_av));
        // Sparse: the blockified dense chunks.
        let mut sparse = sim.run_op(&w.blockified_qk());
        sparse.merge(&sim.run_op(&w.blockified_av()));
        writeln!(
            out,
            "{:>7} {:>7} {:>6} {:>8.1}% {:>9.2}x {:>11.2}x {:>11.2}x{}",
            tokens,
            window,
            block,
            w.density() * 100.0,
            w.mac_saving(),
            dense.energy.total().value() / sparse.energy.total().value(),
            dense.latency.value() / sparse.latency.value(),
            if aligned {
                ""
            } else {
                "   <- misaligned block"
            },
        )
        .unwrap();
    }
    writeln!(
        out,
        "(blockification turns sparse attention into dense chunked MMs that DPTC\n\
         executes natively; block sizes aligned to the 12-wide crossbar convert the\n\
         density saving into real gains, while misaligned blocks waste utilization -\n\
         the motivation for the paper's heterogeneous/searched core sizes)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_sparse_attention_saves_energy_and_latency() {
        let t = fig16();
        let rows: Vec<&str> = t
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .filter(|l| !l.contains("misaligned"))
            .collect();
        assert!(rows.len() >= 4);
        for row in rows {
            let gains: Vec<f64> = row
                .split_whitespace()
                .filter(|tok| tok.ends_with('x'))
                .map(|tok| tok.trim_end_matches('x').parse().unwrap())
                .collect();
            assert_eq!(gains.len(), 3, "row: {row}");
            assert!(gains.iter().all(|&g| g > 1.0), "row without gain: {row}");
        }
    }

    #[test]
    fn misaligned_block_is_flagged() {
        let t = fig16();
        assert!(t.contains("misaligned block"));
    }
}
