//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment is a function returning a formatted report string; the
//! `repro` binary dispatches on a subcommand and prints it. Run
//! `repro all` to regenerate everything (that is what populates
//! `EXPERIMENTS.md`).
//!
//! | Command  | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table I — PTC feature comparison |
//! | `fig3`   | Fig. 3 — dispersion robustness of the design point |
//! | `fig6`   | Fig. 6 — optical dot-product error (4/8-bit) |
//! | `eq6`    | Eq. 6 — crossbar encoding-cost saving |
//! | `eq10`   | Eq. 10 — FSR-limited wavelength count |
//! | `table4` | Table IV — LT-B / LT-L configurations |
//! | `fig7`   | Fig. 7 — area breakdown |
//! | `fig8`   | Fig. 8 — power breakdown |
//! | `fig9`   | Fig. 9 — single-core area/power/latency scaling |
//! | `fig10`  | Fig. 10 — performance & efficiency scaling |
//! | `fig11`  | Fig. 11 — energy vs MRR / MZI on attention + linear |
//! | `fig12`  | Fig. 12 — LT variant ablation |
//! | `table5` | Table V — DeiT energy/latency/EDP vs baselines |
//! | `fig13`  | Fig. 13 — cross-platform energy & FPS |
//! | `fig14`  | Fig. 14 — accuracy vs wavelength count |
//! | `fig15`  | Fig. 15 — accuracy vs encoding noise |
//! | `fig16`  | Fig. 16 — sparse attention blockification |
//! | `svd`    | MZI mapping-cost measurement (Jacobi SVD) |

#![warn(missing_docs)]

pub mod check;
pub mod experiments;
pub mod report;
pub mod timing;

pub use check::compare;
pub use experiments::all_experiments;
pub use report::bench_repro_json;
