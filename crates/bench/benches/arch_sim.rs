//! Criterion benches for the architecture simulator: full-model runs and
//! the scaling sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lt_arch::{ArchConfig, Simulator};
use lt_workloads::TransformerConfig;
use std::hint::black_box;

fn bench_run_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_run_model");
    let sim = Simulator::new(ArchConfig::lt_base(4));
    for model in [
        TransformerConfig::deit_tiny(),
        TransformerConfig::deit_base(),
        TransformerConfig::bert_base(128),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name.clone()),
            &model,
            |bch, m| bch.iter(|| black_box(sim.run_model(black_box(m)))),
        );
    }
    group.finish();
}

fn bench_scaling_sweep(c: &mut Criterion) {
    c.bench_function("fig9_sweep", |bch| {
        bch.iter(|| black_box(lt_arch::scaling::fig9_sweep()))
    });
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_run_model");
    let deit = TransformerConfig::deit_tiny();
    let mrr = lt_baselines::MrrAccelerator::paper_baseline(4);
    group.bench_function("mrr_deit_t", |bch| {
        bch.iter(|| black_box(mrr.run_model(black_box(&deit))))
    });
    let mzi = lt_baselines::MziAccelerator::paper_baseline(4);
    group.bench_function("mzi_deit_t", |bch| {
        bch.iter(|| black_box(mzi.run_model(black_box(&deit))))
    });
    group.finish();
}

criterion_group!(benches, bench_run_model, bench_scaling_sweep, bench_baselines);
criterion_main!(benches);
