//! Benches for the architecture simulator: full-model runs and the
//! scaling sweeps.

use lt_arch::{ArchConfig, Simulator};
use lt_bench::timing::bench;
use lt_workloads::TransformerConfig;

fn main() {
    println!("arch benches\n");
    let sim = Simulator::new(ArchConfig::lt_base(4));
    for model in [
        TransformerConfig::deit_tiny(),
        TransformerConfig::deit_base(),
        TransformerConfig::bert_base(128),
    ] {
        let r = bench(&format!("simulator_run_model/{}", model.name), || {
            sim.run_model(&model)
        });
        println!("{}", r.row());
    }

    let r = bench("fig9_sweep", lt_arch::scaling::fig9_sweep);
    println!("{}", r.row());

    let deit = TransformerConfig::deit_tiny();
    let mrr = lt_baselines::MrrAccelerator::paper_baseline(4);
    let r = bench("baseline_run_model/mrr_deit_t", || mrr.run_model(&deit));
    println!("{}", r.row());
    let mzi = lt_baselines::MziAccelerator::paper_baseline(4);
    let r = bench("baseline_run_model/mzi_deit_t", || mzi.run_model(&deit));
    println!("{}", r.row());
}
