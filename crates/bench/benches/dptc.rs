//! Criterion benches for the DPTC core: one-shot MM and tiled GEMM at the
//! three simulation fidelities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lt_dptc::{DdotCircuit, Dptc, DptcConfig, NoiseModel};
use std::hint::black_box;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect()
}

fn bench_one_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dptc_one_shot_12x12x12");
    let core = Dptc::new(DptcConfig::lt_paper());
    let a = rand_matrix(12, 12, 1);
    let b = rand_matrix(12, 12, 2);
    group.bench_function("ideal", |bch| {
        bch.iter(|| black_box(core.matmul_ideal(black_box(&a), black_box(&b))))
    });
    let nm = NoiseModel::paper_default();
    group.bench_function("noisy_eq9", |bch| {
        bch.iter(|| black_box(core.matmul_noisy(black_box(&a), black_box(&b), &nm, 7)))
    });
    group.finish();
}

fn bench_circuit(c: &mut Criterion) {
    let circuit = DdotCircuit::paper(12);
    let x: Vec<f64> = (0..12).map(|i| (i as f64 / 11.0) - 0.5).collect();
    let y: Vec<f64> = (0..12).map(|i| 0.5 - (i as f64 / 11.0)).collect();
    let nm = NoiseModel::paper_default();
    c.bench_function("ddot_circuit_length12", |bch| {
        bch.iter(|| black_box(circuit.dot_noisy(black_box(&x), black_box(&y), &nm, 3)))
    });
}

fn bench_tiled_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dptc_tiled_gemm");
    let core = Dptc::new(DptcConfig::lt_paper());
    let nm = NoiseModel::paper_default();
    for &(m, k, n) in &[(24usize, 24usize, 24usize), (64, 64, 64), (197, 64, 197)] {
        let a: Vec<f64> = rand_matrix(m, k, 3).into_iter().flatten().collect();
        let b: Vec<f64> = rand_matrix(k, n, 4).into_iter().flatten().collect();
        group.bench_with_input(
            BenchmarkId::new("noisy_4bit", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, &(m, k, n)| {
                bch.iter(|| black_box(core.gemm(&a, &b, m, k, n, 4, &nm, 11)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_one_shot, bench_circuit, bench_tiled_gemm);
criterion_main!(benches);
