//! Benches for the DPTC core: one-shot MM and tiled GEMM at the
//! simulation fidelities, plus the ragged-vs-flat storage comparison.
//!
//! # Before/after note (flat `Matrix` migration)
//!
//! The seed stored operands as ragged `Vec<Vec<f64>>`: every row was its
//! own heap allocation, and the one-shot path allocated two ragged
//! encode buffers plus a ragged output *per call* — three `Vec<Vec<_>>`
//! (39 heap allocations at 12x12) on the hot path of every tile of
//! every GEMM. The `lt-core` migration stores everything flat and
//! contiguous: 3 allocations, linear indexing, in-order cache walks.
//! The `ragged(pre-PR)` benchmarks below re-implement the seed's ragged
//! kernel verbatim so the win stays measurable in the bench history.
//!
//! Measured on the reference container (release, 12x12x12 one-shot):
//! the *deterministic* path (`one_shot_det/*`, noiseless model — what
//! the quantized digital reference and every zero-sigma tile runs) went
//! from ~17.5 us/iter (pre-PR ragged kernel, which re-evaluated the
//! Eq. 9 `sin` for all 1728 MACs) to ~3.7 us/iter on the flat kernel
//! with the multiplier hoisted into the `WavelengthCoefficients` cache —
//! a ~4.8x speedup. The *stochastic* path (`one_shot_noisy/*`) is bound
//! by its 1728 Gaussian draws per call (~56 us/iter), so storage is
//! parity there — the allocations it no longer performs are hidden
//! behind the RNG, and the win surfaces exactly where compute, not
//! noise, dominates.

use lt_bench::timing::bench;
use lt_core::{GaussianSampler, Matrix64};
use lt_dptc::ddot::WavelengthCoefficients;
use lt_dptc::{DdotCircuit, Dptc, DptcConfig, Fidelity, NoiseModel};

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix64 {
    let mut rng = GaussianSampler::new(seed);
    Matrix64::from_fn(rows, cols, |_, _| rng.uniform_in(-1.0, 1.0))
}

/// Copies a flat matrix into the seed's ragged representation (the
/// conversion lives here now that the compatibility shims are gone).
fn ragged(m: &Matrix64) -> Vec<Vec<f64>> {
    (0..m.rows()).map(|i| m.row(i).to_vec()).collect()
}

/// The seed's ragged noisy one-shot kernel, reproduced for the
/// before/after comparison (per-row allocations and all).
fn ragged_matmul_noisy(
    core: &Dptc,
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    noise: &NoiseModel,
    seed: u64,
) -> Vec<Vec<f64>> {
    let cfg = core.config();
    let (nh, nv, nlambda) = (cfg.nh, cfg.nv, cfg.nlambda);
    let mut rng = GaussianSampler::new(seed);
    let coeffs = WavelengthCoefficients::compute(core.ddot().grid(), &noise.dispersion);
    let perturb = |v: f64, rng: &mut GaussianSampler| {
        if noise.sigma_magnitude > 0.0 {
            v + rng.normal(0.0, noise.sigma_magnitude * v.abs())
        } else {
            v
        }
    };
    let a_hat: Vec<Vec<f64>> = a
        .iter()
        .map(|row| row.iter().map(|&v| perturb(v, &mut rng)).collect())
        .collect();
    let b_hat: Vec<Vec<f64>> = b
        .iter()
        .map(|row| row.iter().map(|&v| perturb(v, &mut rng)).collect())
        .collect();
    let mut out = vec![vec![0.0; nv]; nh];
    for i in 0..nh {
        for j in 0..nv {
            let mut io = 0.0;
            for l in 0..nlambda {
                let dphi_d = if noise.sigma_phase_rad > 0.0 {
                    rng.normal(0.0, noise.sigma_phase_rad)
                } else {
                    0.0
                };
                let phi = dphi_d - std::f64::consts::FRAC_PI_2 + coeffs.dphi[l];
                let (t, k) = (coeffs.t[l], coeffs.k[l]);
                let (x, y) = (a_hat[i][l], b_hat[l][j]);
                io += 2.0 * t * k * (-phi.sin()) * x * y + (t * t - k * k) * (x * x - y * y) / 2.0;
            }
            out[i][j] = if noise.sigma_systematic > 0.0 {
                io * (1.0 + rng.normal(0.0, noise.sigma_systematic))
            } else {
                io
            };
        }
    }
    out
}

fn main() {
    let core = Dptc::new(DptcConfig::lt_paper());
    let a = rand_matrix(12, 12, 1);
    let b = rand_matrix(12, 12, 2);
    let nm = NoiseModel::paper_default();

    println!("dptc benches (12x12x12 core)\n");

    let ideal = bench("one_shot/ideal", || {
        core.matmul(a.view(), b.view(), &Fidelity::Ideal)
    });
    println!("{}", ideal.row());

    // Before/after: the seed's ragged kernel vs the flat Matrix kernel.
    let ragged_a = ragged(&a);
    let ragged_b = ragged(&b);
    let quiet = NoiseModel::noiseless();
    let ragged_det = bench("one_shot_det/ragged(pre-PR)", || {
        ragged_matmul_noisy(&core, &ragged_a, &ragged_b, &quiet, 7)
    });
    println!("{}", ragged_det.row());
    let flat_det = bench("one_shot_det/flat(lt-core)", || {
        core.matmul(
            a.view(),
            b.view(),
            &Fidelity::AnalyticNoisy {
                noise: quiet,
                seed: 7,
            },
        )
    });
    println!("{}", flat_det.row());
    println!(
        "  -> flat storage speedup (deterministic path): {:.2}x\n",
        flat_det.speedup_vs(&ragged_det)
    );

    let ragged = bench("one_shot_noisy/ragged(pre-PR)", || {
        ragged_matmul_noisy(&core, &ragged_a, &ragged_b, &nm, 7)
    });
    println!("{}", ragged.row());
    let flat = bench("one_shot_noisy/flat(lt-core)", || {
        core.matmul(a.view(), b.view(), &Fidelity::paper_noisy(7))
    });
    println!("{}", flat.row());
    println!(
        "  -> flat storage speedup (RNG-bound noisy path): {:.2}x\n",
        flat.speedup_vs(&ragged)
    );

    let circuit = DdotCircuit::paper(12);
    let x: Vec<f64> = (0..12).map(|i| (i as f64 / 11.0) - 0.5).collect();
    let y: Vec<f64> = (0..12).map(|i| 0.5 - (i as f64 / 11.0)).collect();
    let r = bench("ddot_circuit/length12", || {
        circuit.dot_noisy(&x, &y, &nm, 3)
    });
    println!("{}", r.row());

    for &(m, k, n) in &[(24usize, 24usize, 24usize), (64, 64, 64), (197, 64, 197)] {
        let a = rand_matrix(m, k, 3);
        let b = rand_matrix(k, n, 4);
        let r = bench(&format!("tiled_gemm_noisy_4bit/{m}x{k}x{n}"), || {
            core.gemm(a.view(), b.view(), 4, &Fidelity::paper_noisy(11))
        });
        println!("{}", r.row());
    }
}
