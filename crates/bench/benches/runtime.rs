//! Throughput of the parallel runtime: sequential vs. `ParallelBackend`
//! at 1/2/4/8 threads, plus batched serving at 1 vs. 4 workers.
//!
//! ```sh
//! cargo bench -p lt-bench --bench runtime
//! ```
//!
//! The row-block partition gives each thread `ceil(m / (threads * g)) * g`
//! rows of independent work (g = the backend's preferred block rows), so
//! on an `N`-core host the large-GEMM wall clock approaches `1/N` of
//! sequential until memory bandwidth saturates; per-block dispatch
//! overhead is one job box + one `a`-strip copy, amortized over
//! `O(g * k * n)` MACs.
//!
//! Recorded run (`cargo bench -p lt-bench --bench runtime`, this
//! repository's reference build container — which exposes exactly ONE
//! hardware thread, so it cannot exhibit parallel speedup by
//! construction): see the RECORDED RESULTS block at the bottom of this
//! file for the captured table. On one CPU every thread count runs at
//! parity with sequential (the pool can only interleave), and dispatch
//! overhead stays in the noise — which, combined with the bit-identity
//! tests in `tests/runtime_determinism.rs`, is the strongest claim a
//! single-core host can verify. The speedup itself comes from the work
//! partition being embarrassingly parallel: the row blocks of a GEMM
//! share no mutable state and no noise stream, so `T` threads execute
//! `ceil(blocks/T)` blocks each with zero synchronization beyond one
//! channel send per block; a 2x-or-better wall-clock gain at 4 threads
//! on a 4-core-or-better host follows from that structure and must be
//! re-measured there (`cargo bench -p lt-bench --bench runtime` prints
//! the same table on any machine).

use lt_bench::timing::{bench_for, BenchReport};
use lt_core::{ComputeBackend, GaussianSampler, Matrix64, NativeBackend, RunCtx};
use lt_dptc::DptcBackend;
use lt_nn::decode::{DecodeReply, DecoderConfig, DecoderLm};
use lt_nn::model::ModelConfig;
use lt_nn::serve::decode::{DecodeRequest, DecodeServeConfig, DecodeServer, SpecConfig};
use lt_nn::serve::sched::KvServeConfig;
use lt_nn::serve::{Request, ServeConfig, Server};
use lt_nn::{Tensor, TextClassifier, VisionTransformer};
use lt_runtime::{ParallelBackend, ThreadsConfig};
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SPEC_KS: [usize; 4] = [0, 2, 4, 8];
const WINDOW: Duration = Duration::from_millis(300);

fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix64, Matrix64) {
    let mut rng = GaussianSampler::new(seed);
    (
        Matrix64::randn(m, k, 1.0, &mut rng),
        Matrix64::randn(k, n, 1.0, &mut rng),
    )
}

fn gemm_sweep<B>(label: &str, backend: B, m: usize, k: usize, n: usize)
where
    B: ComputeBackend + Clone + Send + Sync + 'static,
{
    let (a, b) = rand_pair(m, k, n, 1);
    let seq = bench_for(&format!("{label} {m}x{k}x{n} sequential"), WINDOW, || {
        backend.gemm(a.view(), b.view(), &mut RunCtx::new(7))
    });
    println!("{}", seq.row());
    for threads in THREADS {
        let par = ParallelBackend::new(backend.clone(), threads);
        let report = bench_for(
            &format!("{label} {m}x{k}x{n} {threads} threads"),
            WINDOW,
            || par.gemm(a.view(), b.view(), &mut RunCtx::new(7)),
        );
        println!(
            "{}  [{:.2}x vs sequential]",
            report.row(),
            report.speedup_vs(&seq)
        );
    }
    println!();
}

fn serving_sweep() {
    let mut rng = GaussianSampler::new(42);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
    let requests: Vec<Request> = (0..48)
        .map(|i| {
            if i % 3 == 2 {
                Request::Text((0..12).map(|t| (i + t) % 16).collect())
            } else {
                Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
            }
        })
        .collect();
    let mut baseline: Option<BenchReport> = None;
    for workers in [1usize, 4] {
        let report = bench_for(
            &format!("serve 48 mixed DPTC requests, {workers} worker(s)"),
            WINDOW,
            || {
                let server = Server::new(
                    vision.clone(),
                    text.clone(),
                    DptcBackend::paper(8, 7),
                    ServeConfig {
                        workers,
                        max_batch: 8,
                        seed: 7,
                        ..ServeConfig::default()
                    },
                );
                let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
                let replies: Vec<lt_nn::Reply> = pending.into_iter().map(|p| p.wait()).collect();
                server.shutdown();
                replies
            },
        );
        match &baseline {
            None => {
                println!("{}", report.row());
                baseline = Some(report);
            }
            Some(base) => {
                println!(
                    "{}  [{:.2}x vs 1 worker]",
                    report.row(),
                    report.speedup_vs(base)
                );
            }
        }
    }
}

/// The wired serving path: the same request mix served through
/// `ServeConfig::threads` (the `LT_THREADS` knob) at every thread
/// count. On a 1-core host this prints parity (the table's purpose
/// there is bounding the pool's dispatch overhead); on a multi-core
/// host it prints the row-block scaling. Replies are bit-identical
/// either way (`tests/runtime_determinism.rs`).
fn serving_threads_sweep() {
    let mut rng = GaussianSampler::new(42);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
    let requests: Vec<Request> = (0..12)
        .map(|i| {
            if i % 3 == 2 {
                Request::Text((0..12).map(|t| (i + t) % 16).collect())
            } else {
                Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
            }
        })
        .collect();
    let mut baseline: Option<BenchReport> = None;
    for threads in THREADS {
        let report = bench_for(
            &format!("serve 12 DPTC requests, LT_THREADS={threads}"),
            WINDOW,
            || {
                let server = Server::new(
                    vision.clone(),
                    text.clone(),
                    DptcBackend::paper(8, 7),
                    ServeConfig {
                        workers: 2,
                        max_batch: 4,
                        seed: 7,
                        threads: ThreadsConfig::new(threads),
                        ..ServeConfig::default()
                    },
                );
                let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
                let replies: Vec<lt_nn::Reply> = pending.into_iter().map(|p| p.wait()).collect();
                server.shutdown();
                replies
            },
        );
        match &baseline {
            None => {
                println!("{}", report.row());
                baseline = Some(report);
            }
            Some(base) => {
                println!(
                    "{}  [{:.2}x vs 1 thread]",
                    report.row(),
                    report.speedup_vs(base)
                );
            }
        }
    }
    println!();
}

/// Speculative decoding on the HOST clock: the same 8-session decode
/// mix served at every `spec_k`. The modeled win lives on the
/// accelerator (`repro spec` shows replayed target cycles/token
/// dropping ~3x at k=4, batch 1); on the host, every draft token and
/// every rolled-back verify row is REAL GEMM work the CPU still
/// executes, so wall clock is expected to get *worse* as k grows.
/// This sweep records that draft overhead honestly instead of letting
/// the modeled numbers imply a host-side speedup that isn't there.
fn spec_k_sweep() {
    let mut rng = GaussianSampler::new(42);
    let mut model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    // Without the taper a random-init target disagrees with its own
    // bottom half at chance level and the sweep measures pure waste.
    model.taper_deep_blocks(0.25);
    let requests: Vec<DecodeRequest> = (0..8)
        .map(|i| DecodeRequest {
            prompt: (0..3 + i % 4).map(|t| (i * 5 + t * 3) % 16).collect(),
            max_new_tokens: 6 + i % 5,
        })
        .collect();
    let mut baseline: Option<BenchReport> = None;
    for k in SPEC_KS {
        let report = bench_for(&format!("decode 8 sessions, spec_k={k}"), WINDOW, || {
            let server = DecodeServer::new(
                model.clone(),
                DptcBackend::paper(8, 3),
                DecodeServeConfig {
                    workers: 1,
                    max_active: 4,
                    seed: 7,
                    kv: KvServeConfig {
                        block_tokens: 4,
                        pool_blocks: 64,
                        ..KvServeConfig::default()
                    },
                    spec: SpecConfig::with_k(k),
                    ..DecodeServeConfig::default()
                },
            );
            let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
            let replies: Vec<DecodeReply> = pending.into_iter().map(|p| p.wait()).collect();
            server.shutdown();
            replies
        });
        match &baseline {
            None => {
                println!("{}", report.row());
                baseline = Some(report);
            }
            Some(base) => {
                println!(
                    "{}  [{:.2}x vs spec_k=0 on the host]",
                    report.row(),
                    report.speedup_vs(base)
                );
            }
        }
    }
    println!();
}

fn main() {
    println!("== parallel runtime throughput ==");
    println!(
        "host parallelism: {} hardware thread(s)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    gemm_sweep("native", NativeBackend, 384, 384, 384);
    gemm_sweep("dptc-analytic", DptcBackend::paper(8, 5), 192, 192, 192);
    serving_threads_sweep();
    spec_k_sweep();
    serving_sweep();
}

// RECORDED RESULTS — reference build container, 2026-08-07.
// `available_parallelism() == 1` on this host, so parity (not speedup)
// is the expected and observed outcome for the thread sweeps; the
// numbers bound the runtime's dispatch overhead even when every block
// is forced through the pool with nothing to gain.
//
//   host parallelism: 1 hardware thread(s)
//   native 384x384x384 sequential                    14873 us/iter
//   native 384x384x384 1 threads                     12769 us/iter  [1.16x]
//   native 384x384x384 2 threads                     13453 us/iter  [1.11x]
//   native 384x384x384 4 threads                     17548 us/iter  [0.85x]
//   native 384x384x384 8 threads                     15820 us/iter  [0.94x]
//   dptc-analytic 192x192x192 sequential             20264 us/iter
//   dptc-analytic 192x192x192 1 threads              19420 us/iter  [1.04x]
//   dptc-analytic 192x192x192 2 threads              20618 us/iter  [0.98x]
//   dptc-analytic 192x192x192 4 threads              24479 us/iter  [0.83x]
//   dptc-analytic 192x192x192 8 threads              20668 us/iter  [0.98x]
//   serve 12 DPTC requests, LT_THREADS=1             16466 us/iter
//   serve 12 DPTC requests, LT_THREADS=2             16428 us/iter  [1.00x]
//   serve 12 DPTC requests, LT_THREADS=4             17057 us/iter  [0.97x]
//   serve 12 DPTC requests, LT_THREADS=8             16408 us/iter  [1.00x]
//   decode 8 sessions, spec_k=0                      17663 us/iter
//   decode 8 sessions, spec_k=2                      41430 us/iter  [0.43x]
//   decode 8 sessions, spec_k=4                      46549 us/iter  [0.38x]
//   decode 8 sessions, spec_k=8                      49725 us/iter  [0.36x]
//   serve 48 mixed DPTC requests, 1 worker(s)        63020 us/iter
//   serve 48 mixed DPTC requests, 4 worker(s)        70859 us/iter  [0.89x]
//
// The spec_k rows are the honest host-side cost of speculation: every
// draft token, every verify row, and every rolled-back position is a
// real CPU GEMM here, so host wall clock DEGRADES 2.3-2.8x as k grows
// even while the modeled accelerator metric — replayed target cycles
// per generated token, the thing `repro spec` gates — improves ~3.2x
// at k=4, batch 1. The simulator charges the verify pass once at
// batched-GEMM cost and the draft at draft-trace cost; the host
// executes both serially at full precision, and that gap is the whole
// point of measuring on the accelerator model rather than the host.
//
// On a multi-core host the same binary prints the scaling table; the
// determinism suite guarantees the outputs are bit-identical either way.
