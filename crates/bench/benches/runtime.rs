//! Throughput of the parallel runtime: sequential vs. `ParallelBackend`
//! at 1/2/4/8 threads, plus batched serving at 1 vs. 4 workers.
//!
//! ```sh
//! cargo bench -p lt-bench --bench runtime
//! ```
//!
//! The row-block partition gives each thread `ceil(m / (threads * g)) * g`
//! rows of independent work (g = the backend's preferred block rows), so
//! on an `N`-core host the large-GEMM wall clock approaches `1/N` of
//! sequential until memory bandwidth saturates; per-block dispatch
//! overhead is one job box + one `a`-strip copy, amortized over
//! `O(g * k * n)` MACs.
//!
//! Recorded run (`cargo bench -p lt-bench --bench runtime`, this
//! repository's reference build container — which exposes exactly ONE
//! hardware thread, so it cannot exhibit parallel speedup by
//! construction): see the RECORDED RESULTS block at the bottom of this
//! file for the captured table. On one CPU every thread count runs at
//! parity with sequential (the pool can only interleave), and dispatch
//! overhead stays in the noise — which, combined with the bit-identity
//! tests in `tests/runtime_determinism.rs`, is the strongest claim a
//! single-core host can verify. The speedup itself comes from the work
//! partition being embarrassingly parallel: the row blocks of a GEMM
//! share no mutable state and no noise stream, so `T` threads execute
//! `ceil(blocks/T)` blocks each with zero synchronization beyond one
//! channel send per block; a 2x-or-better wall-clock gain at 4 threads
//! on a 4-core-or-better host follows from that structure and must be
//! re-measured there (`cargo bench -p lt-bench --bench runtime` prints
//! the same table on any machine).

use lt_bench::timing::{bench_for, BenchReport};
use lt_core::{ComputeBackend, GaussianSampler, Matrix64, NativeBackend, RunCtx};
use lt_dptc::DptcBackend;
use lt_nn::model::ModelConfig;
use lt_nn::serve::{Request, ServeConfig, Server};
use lt_nn::{Tensor, TextClassifier, VisionTransformer};
use lt_runtime::ParallelBackend;
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const WINDOW: Duration = Duration::from_millis(300);

fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix64, Matrix64) {
    let mut rng = GaussianSampler::new(seed);
    (
        Matrix64::randn(m, k, 1.0, &mut rng),
        Matrix64::randn(k, n, 1.0, &mut rng),
    )
}

fn gemm_sweep<B>(label: &str, backend: B, m: usize, k: usize, n: usize)
where
    B: ComputeBackend + Clone + Send + Sync + 'static,
{
    let (a, b) = rand_pair(m, k, n, 1);
    let seq = bench_for(&format!("{label} {m}x{k}x{n} sequential"), WINDOW, || {
        backend.gemm(a.view(), b.view(), &mut RunCtx::new(7))
    });
    println!("{}", seq.row());
    for threads in THREADS {
        let par = ParallelBackend::new(backend.clone(), threads);
        let report = bench_for(
            &format!("{label} {m}x{k}x{n} {threads} threads"),
            WINDOW,
            || par.gemm(a.view(), b.view(), &mut RunCtx::new(7)),
        );
        println!(
            "{}  [{:.2}x vs sequential]",
            report.row(),
            report.speedup_vs(&seq)
        );
    }
    println!();
}

fn serving_sweep() {
    let mut rng = GaussianSampler::new(42);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
    let requests: Vec<Request> = (0..48)
        .map(|i| {
            if i % 3 == 2 {
                Request::Text((0..12).map(|t| (i + t) % 16).collect())
            } else {
                Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
            }
        })
        .collect();
    let mut baseline: Option<BenchReport> = None;
    for workers in [1usize, 4] {
        let report = bench_for(
            &format!("serve 48 mixed DPTC requests, {workers} worker(s)"),
            WINDOW,
            || {
                let server = Server::new(
                    vision.clone(),
                    text.clone(),
                    DptcBackend::paper(8, 7),
                    ServeConfig {
                        workers,
                        max_batch: 8,
                        seed: 7,
                        ..ServeConfig::default()
                    },
                );
                let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
                let replies: Vec<lt_nn::Reply> = pending.into_iter().map(|p| p.wait()).collect();
                server.shutdown();
                replies
            },
        );
        match &baseline {
            None => {
                println!("{}", report.row());
                baseline = Some(report);
            }
            Some(base) => {
                println!(
                    "{}  [{:.2}x vs 1 worker]",
                    report.row(),
                    report.speedup_vs(base)
                );
            }
        }
    }
}

fn main() {
    println!("== parallel runtime throughput ==");
    println!(
        "host parallelism: {} hardware thread(s)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    gemm_sweep("native", NativeBackend, 384, 384, 384);
    gemm_sweep("dptc-analytic", DptcBackend::paper(8, 5), 192, 192, 192);
    serving_sweep();
}

// RECORDED RESULTS — reference build container, 2026-07-30.
// `available_parallelism() == 1` on this host, so parity (not speedup)
// is the expected and observed outcome; the numbers below bound the
// runtime's dispatch overhead at <= 9% even when every block is forced
// through the pool with nothing to gain:
//
//   host parallelism: 1 hardware thread(s)
//   native 384x384x384 sequential                    13616 us/iter
//   native 384x384x384 1 threads                     13962 us/iter  [0.98x]
//   native 384x384x384 2 threads                     14411 us/iter  [0.94x]
//   native 384x384x384 4 threads                     14913 us/iter  [0.91x]
//   native 384x384x384 8 threads                     14898 us/iter  [0.91x]
//   dptc-analytic 192x192x192 sequential            269049 us/iter
//   dptc-analytic 192x192x192 4 threads             286947 us/iter  [0.94x]
//   serve 48 mixed DPTC requests, 1 worker(s)       969544 us/iter
//   serve 48 mixed DPTC requests, 4 worker(s)      1002832 us/iter  [0.97x]
//
// On a multi-core host the same binary prints the scaling table; the
// determinism suite guarantees the outputs are bit-identical either way.
