//! Benches for the NN stack: forward passes on the exact and photonic
//! engines, and a training step.

use lt_bench::timing::bench;
use lt_core::GaussianSampler;
use lt_nn::data;
use lt_nn::engine::{ExactEngine, PhotonicEngine};
use lt_nn::layers::ForwardCtx;
use lt_nn::model::{Classifier, ModelConfig, VisionTransformer};
use lt_nn::quant::QuantConfig;

fn make_vit() -> VisionTransformer {
    let mut rng = GaussianSampler::new(1);
    VisionTransformer::new(
        ModelConfig::tiny_vision(),
        data::NUM_PATCHES,
        data::PATCH_DIM,
        &mut rng,
    )
}

fn main() {
    println!("nn benches\n");
    let sample = data::vision_dataset(1, 5).remove(0).0;

    let mut vit = make_vit();
    let mut eng = ExactEngine;
    let r = bench("vit_forward/exact_fp32", || {
        let mut rng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut rng);
        vit.forward(&sample, &mut ctx)
    });
    println!("{}", r.row());

    let mut vit = make_vit();
    let mut eng = PhotonicEngine::paper(4, 12, 9);
    let r = bench("vit_forward/photonic_4bit_12lambda", || {
        let mut rng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::low_bit(4), &mut rng);
        vit.forward(&sample, &mut ctx)
    });
    println!("{}", r.row());

    let data = data::vision_dataset(8, 6);
    let r = bench("vit_train_epoch_8samples", || {
        let mut vit = make_vit();
        let cfg = lt_nn::train::TrainConfig {
            epochs: 1,
            ..lt_nn::train::TrainConfig::quick()
        };
        lt_nn::train::train(&mut vit, &data, &cfg)
    });
    println!("{}", r.row());
}
