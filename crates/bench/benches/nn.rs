//! Criterion benches for the NN stack: forward passes on the exact and
//! photonic engines, and a training step.

use criterion::{criterion_group, criterion_main, Criterion};
use lt_nn::data;
use lt_nn::engine::{ExactEngine, PhotonicEngine};
use lt_nn::layers::ForwardCtx;
use lt_nn::model::{Classifier, ModelConfig, VisionTransformer};
use lt_nn::quant::QuantConfig;
use lt_photonics::noise::GaussianSampler;
use std::hint::black_box;

fn make_vit() -> VisionTransformer {
    let mut rng = GaussianSampler::new(1);
    VisionTransformer::new(ModelConfig::tiny_vision(), data::NUM_PATCHES, data::PATCH_DIM, &mut rng)
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("vit_forward");
    let sample = data::vision_dataset(1, 5).remove(0).0;

    group.bench_function("exact_fp32", |bch| {
        let mut vit = make_vit();
        let mut eng = ExactEngine;
        bch.iter(|| {
            let mut rng = GaussianSampler::new(0);
            let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut rng);
            black_box(vit.forward(black_box(&sample), &mut ctx))
        })
    });

    group.bench_function("photonic_4bit_12lambda", |bch| {
        let mut vit = make_vit();
        let mut eng = PhotonicEngine::paper(4, 12, 9);
        bch.iter(|| {
            let mut rng = GaussianSampler::new(0);
            let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::low_bit(4), &mut rng);
            black_box(vit.forward(black_box(&sample), &mut ctx))
        })
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let data = data::vision_dataset(8, 6);
    c.bench_function("vit_train_epoch_8samples", |bch| {
        bch.iter(|| {
            let mut vit = make_vit();
            let cfg = lt_nn::train::TrainConfig {
                epochs: 1,
                ..lt_nn::train::TrainConfig::quick()
            };
            black_box(lt_nn::train::train(&mut vit, black_box(&data), &cfg))
        })
    });
}

criterion_group!(benches, bench_forward, bench_train_step);
criterion_main!(benches);
