//! Throughput of the shared GEMM micro-kernel and the true integer
//! execution path.
//!
//! ```sh
//! cargo bench -p lt-bench --bench kernel
//! ```
//!
//! Three comparisons:
//!
//! 1. **tiled vs naive** — the register-blocked, cache-tiled
//!    `lt_core::kernel::tiled_gemm` against the textbook triple loop
//!    (`reference_gemm`), for `f64` and `f32`. The two are bit-identical
//!    (`tests/kernel_equivalence.rs`); this bench shows what the
//!    identical answer costs.
//! 2. **f64 vs i8** — the exact float kernel against `quantized_gemm`
//!    on pre-encoded i8 operands (the paper's 8-bit work mode executed
//!    on real integer codes, grouped per-channel scales).
//! 3. **fp32 vs int8 forward** — a whole tiny-ViT forward pass with the
//!    weight-bearing layers on fp32 vs on the integer path.
//!
//! See the RECORDED RESULTS block at the bottom for the captured table
//! from the reference build container.

use lt_bench::timing::bench_for;
use lt_core::kernel::tiled_gemm;
use lt_core::{
    quantized_gemm, reference_gemm, GaussianSampler, Matrix32, Matrix64, QuantizedMatrix,
};
use lt_nn::layers::ForwardCtx;
use lt_nn::model::{Classifier, ModelConfig, VisionTransformer};
use lt_nn::quant::QuantConfig;
use lt_nn::{ExactEngine, Tensor};
use std::time::Duration;

const WINDOW: Duration = Duration::from_millis(300);

fn tiled_vs_naive(m: usize, k: usize, n: usize) {
    let mut rng = GaussianSampler::new(1);
    let a64 = Matrix64::randn(m, k, 1.0, &mut rng);
    let b64 = Matrix64::randn(k, n, 1.0, &mut rng);
    let naive = bench_for(&format!("naive f64 {m}x{k}x{n}"), WINDOW, || {
        reference_gemm(&a64.view(), &b64.view())
    });
    println!("{}", naive.row());
    let tiled = bench_for(&format!("tiled f64 {m}x{k}x{n}"), WINDOW, || {
        tiled_gemm(&a64.view(), &b64.view())
    });
    println!(
        "{}  [{:.2}x vs naive]",
        tiled.row(),
        tiled.speedup_vs(&naive)
    );

    let a32 = Matrix32::randn(m, k, 1.0, &mut rng);
    let b32 = Matrix32::randn(k, n, 1.0, &mut rng);
    let naive32 = bench_for(&format!("naive f32 {m}x{k}x{n}"), WINDOW, || {
        reference_gemm(&a32.view(), &b32.view())
    });
    println!("{}", naive32.row());
    let tiled32 = bench_for(&format!("tiled f32 {m}x{k}x{n}"), WINDOW, || {
        tiled_gemm(&a32.view(), &b32.view())
    });
    println!(
        "{}  [{:.2}x vs naive]\n",
        tiled32.row(),
        tiled32.speedup_vs(&naive32)
    );
}

fn float_vs_integer(m: usize, k: usize, n: usize) {
    let mut rng = GaussianSampler::new(3);
    let a64 = Matrix64::randn(m, k, 1.0, &mut rng);
    let b64 = Matrix64::randn(k, n, 1.0, &mut rng);
    let f64_report = bench_for(&format!("tiled f64 {m}x{k}x{n}"), WINDOW, || {
        tiled_gemm(&a64.view(), &b64.view())
    });
    println!("{}", f64_report.row());

    let a32 = Matrix32::randn(m, k, 1.0, &mut rng);
    let b32 = Matrix32::randn(k, n, 1.0, &mut rng);
    for bits in [8u32, 4] {
        let aq = QuantizedMatrix::quantize_rows(&a32.view(), bits, 32);
        let bq = QuantizedMatrix::quantize_cols(&b32.view(), bits, 32);
        let int = bench_for(
            &format!("i{bits} gemm {m}x{k}x{n} (group 32)"),
            WINDOW,
            || quantized_gemm(&aq, &bq),
        );
        println!(
            "{}  [{:.2}x vs f64]",
            int.row(),
            int.speedup_vs(&f64_report)
        );
    }
    // Include the encode cost (quantize-at-call, the Linear layer's
    // actual per-forward work).
    let enc = bench_for(&format!("i8 encode+gemm {m}x{k}x{n}"), WINDOW, || {
        let aq = QuantizedMatrix::quantize_rows(&a32.view(), 8, 32);
        let bq = QuantizedMatrix::quantize_cols(&b32.view(), 8, 32);
        quantized_gemm(&aq, &bq)
    });
    println!(
        "{}  [{:.2}x vs f64]\n",
        enc.row(),
        enc.speedup_vs(&f64_report)
    );
}

fn forward_modes() {
    let mut rng = GaussianSampler::new(42);
    let vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let patches = Tensor::randn(16, 16, 1.0, &mut rng);
    let mut base = None;
    for (label, quant) in [
        ("fp32", QuantConfig::fp32()),
        ("int8", QuantConfig::int8()),
        ("int4", QuantConfig::int4()),
    ] {
        let report = bench_for(
            &format!("tiny-ViT forward {label} (exact engine)"),
            WINDOW,
            || {
                let mut model = vit.clone();
                let mut engine = ExactEngine;
                let mut nrng = GaussianSampler::new(0);
                let mut ctx = ForwardCtx::inference(&mut engine, quant, &mut nrng);
                model.forward(&patches, &mut ctx)
            },
        );
        match &base {
            None => {
                println!("{}", report.row());
                base = Some(report);
            }
            Some(b) => println!("{}  [{:.2}x vs fp32]", report.row(), report.speedup_vs(b)),
        }
    }
}

fn main() {
    println!("== shared GEMM micro-kernel & integer path ==");
    tiled_vs_naive(96, 256, 96);
    tiled_vs_naive(192, 192, 192);
    float_vs_integer(96, 256, 96);
    forward_modes();
}

// RECORDED RESULTS — reference build container, 2026-08-07 (one
// hardware thread; single-threaded data path only):
//
//   naive f64 96x256x96                  6598 us/iter
//   tiled f64 96x256x96                   594 us/iter  [11.10x vs naive]
//   naive f32 96x256x96                  6442 us/iter
//   tiled f32 96x256x96                   341 us/iter  [18.91x vs naive]
//   naive f64 192x192x192               20317 us/iter
//   tiled f64 192x192x192                1945 us/iter  [10.44x vs naive]
//   naive f32 192x192x192               15797 us/iter
//   tiled f32 192x192x192                 783 us/iter  [20.19x vs naive]
//   tiled f64 96x256x96                   573 us/iter
//   i8 gemm 96x256x96 (group 32)          745 us/iter  [0.77x vs f64]
//   i4 gemm 96x256x96 (group 32)          873 us/iter  [0.66x vs f64]
//   i8 encode+gemm 96x256x96             1134 us/iter  [0.51x vs f64]
//   tiny-ViT forward fp32 (exact)         167 us/iter
//   tiny-ViT forward int8 (exact)         631 us/iter  [0.26x vs fp32]
//   tiny-ViT forward int4 (exact)         807 us/iter  [0.21x vs fp32]
//
// (Numbers vary run to run on the shared container; regenerate with the
// command above.) The tiled kernel's 10-20x over the naive loop is the
// host-side half of this PR's speedup claim. The integer path is
// *slower* on the host — a scalar i8 loop can't beat the autovectorized
// float micro-kernel, and per-call encoding costs more than it saves —
// its win is on the modeled accelerator (the 4-bit work mode's cycle
// count) and in memory (i4 halves code bytes), both asserted
// deterministically in the test suites.
