//! Bench for the Jacobi SVD (the MZI baseline's per-tile
//! operand-mapping cost).

use lt_baselines::jacobi_svd;
use lt_bench::timing::bench;

fn main() {
    println!("jacobi_svd benches\n");
    for &k in &[8usize, 12, 16, 24] {
        let a: Vec<f64> = (0..k * k)
            .map(|i| ((i * 2654435761usize % 1000) as f64 / 500.0) - 1.0)
            .collect();
        let r = bench(&format!("jacobi_svd/{k}x{k}"), || jacobi_svd(&a, k, k));
        println!("{}", r.row());
    }
}
