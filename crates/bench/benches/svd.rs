//! Criterion bench for the Jacobi SVD (the MZI baseline's per-tile
//! operand-mapping cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lt_baselines::jacobi_svd;
use std::hint::black_box;

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_svd");
    for &k in &[8usize, 12, 16, 24] {
        let a: Vec<f64> = (0..k * k)
            .map(|i| ((i * 2654435761usize % 1000) as f64 / 500.0) - 1.0)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            bch.iter(|| black_box(jacobi_svd(black_box(&a), k, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
