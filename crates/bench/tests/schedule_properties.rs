//! Seeded-sweep property tests for the tile scheduler (the workspace
//! has no crates.io access, so no proptest — the sweep is deterministic
//! and exhaustive over its grid).
//!
//! The invariants, for every dataflow policy on every headline
//! configuration:
//!
//! * scheduled cycles sit in `[ideal tile lower bound, closed-form
//!   sequential upper bound]`;
//! * scheduled cycles and latency are monotone in `m`, `k`, and `n`;
//! * under an unconstrained-SRAM / infinite-bandwidth configuration the
//!   scheduled report equals `Simulator::analytic_report` exactly.

use lt_arch::latency::{ideal_tile_cycles, sequential_tile_cycles};
use lt_arch::{ArchConfig, DataflowPolicy, Simulator};
use lt_core::trace::{OpKind, OperandDynamics};
use lt_core::{Op, Trace};

fn configs() -> Vec<ArchConfig> {
    vec![
        ArchConfig::lt_base(4),
        ArchConfig::lt_large(4),
        ArchConfig::lt_base(8),
        ArchConfig::single_core(12, 4),
    ]
}

const DIMS: [usize; 6] = [1, 5, 12, 13, 48, 197];
const INSTANCES: [usize; 3] = [1, 2, 12];
const KINDS: [OpKind; 2] = [OpKind::Ffn1, OpKind::AttnQk];

/// Mapped (rows, inner, cols) for the tile-bound helpers — the same
/// Fig. 5 transposition the simulator applies to weight-static ops.
fn mapped(kind: OpKind, m: usize, k: usize, n: usize) -> (usize, usize, usize) {
    match kind.dynamics() {
        OperandDynamics::WeightStatic => (n, k, m),
        OperandDynamics::BothDynamic => (m, k, n),
    }
}

fn scheduled(sim: &Simulator, policy: DataflowPolicy, op: Op) -> lt_arch::RunReport {
    sim.schedule_trace(&Trace::from_ops(vec![op]), policy).total
}

#[test]
fn scheduled_cycles_sit_between_the_ideal_and_sequential_bounds() {
    for cfg in configs() {
        let sim = Simulator::new(cfg.clone());
        for policy in DataflowPolicy::ALL {
            for kind in KINDS {
                for &m in &DIMS {
                    for &k in &DIMS {
                        for &n in &DIMS {
                            for &i in &INSTANCES {
                                let r = scheduled(&sim, policy, Op::gemm_n(kind, m, k, n, i));
                                let (rows, inner, cols) = mapped(kind, m, k, n);
                                let lo = ideal_tile_cycles(&cfg, rows, inner, cols, i);
                                let hi = sequential_tile_cycles(&cfg, rows, inner, cols, i);
                                assert!(
                                    r.cycles >= lo,
                                    "{} {policy} {kind:?} {m}x{k}x{n} i={i}: {} < ideal {lo}",
                                    cfg.name,
                                    r.cycles
                                );
                                assert!(
                                    r.cycles <= hi,
                                    "{} {policy} {kind:?} {m}x{k}x{n} i={i}: {} > sequential {hi}",
                                    cfg.name,
                                    r.cycles
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn scheduled_cycles_and_latency_are_monotone_in_every_dimension() {
    // A strictly larger GEMM can never get cheaper: more rows, a deeper
    // inner dimension, or more columns all mean at least as many waves
    // and at least as much operand traffic.
    let sim = Simulator::new(ArchConfig::lt_base(4));
    let grow = |m: usize, k: usize, n: usize| [(m + 1, k, n), (m, k + 1, n), (m, k, n + 1)];
    for policy in DataflowPolicy::ALL {
        for kind in KINDS {
            for &m in &DIMS {
                for &k in &DIMS {
                    for &n in &DIMS {
                        let base = scheduled(&sim, policy, Op::gemm_n(kind, m, k, n, 3));
                        for (gm, gk, gn) in grow(m, k, n) {
                            let bigger = scheduled(&sim, policy, Op::gemm_n(kind, gm, gk, gn, 3));
                            assert!(
                                bigger.cycles >= base.cycles,
                                "{policy} {kind:?}: cycles {m}x{k}x{n} -> {gm}x{gk}x{gn}"
                            );
                            assert!(
                                bigger.latency.value() >= base.latency.value() * (1.0 - 1e-12),
                                "{policy} {kind:?}: latency {m}x{k}x{n} -> {gm}x{gk}x{gn}: \
                                 {} < {}",
                                bigger.latency.value(),
                                base.latency.value()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn unconstrained_memory_reproduces_the_closed_form_exactly() {
    // The oracle identity on the raw op grid (the benchmark-trace form
    // lives in tests/trace_crossval.rs): with nothing to stage or stall
    // on, scheduled == analytic, bit for bit, under every policy.
    for cfg in configs() {
        let sim = Simulator::new(cfg.clone().unconstrained_memory());
        for policy in DataflowPolicy::ALL {
            for kind in KINDS {
                for &m in &DIMS {
                    for &n in &DIMS {
                        for &i in &INSTANCES {
                            let trace = Trace::from_ops(vec![Op::gemm_n(kind, m, 48, n, i)]);
                            let s = sim.schedule_trace(&trace, policy).total;
                            let a = sim.analytic_report(&trace);
                            assert_eq!(s, a, "{} {policy} {kind:?} {m}x48x{n} i={i}", cfg.name);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn scheduled_multi_op_traces_never_lose_to_the_closed_form() {
    // Whole traces mixing weight-static and dynamic ops: prefetch
    // overlap can only help relative to the per-op closed form, for
    // every policy and config. (The guarantee is about traces with any
    // compute to hide traffic under — a pathological stream of *only*
    // memory-bound ops can exceed the closed form by its pipeline-fill
    // tails, which the closed form hides inside `max(compute, HBM)`;
    // the schedule charges them honestly. The paper benchmarks and the
    // decode trace — the traces that matter — are pinned `<=` in
    // tests/trace_crossval.rs.)
    let ops = vec![
        Op::gemm_n(OpKind::QkvProj, 64, 96, 96, 12),
        Op::gemm_n(OpKind::AttnQk, 64, 8, 64, 24),
        Op::gemm_n(OpKind::AttnAv, 64, 64, 8, 24),
        Op::gemm_n(OpKind::OutProj, 64, 96, 96, 12),
        Op::gemm_n(OpKind::Ffn1, 64, 96, 384, 12),
        Op::gemm_n(OpKind::Ffn2, 64, 384, 96, 12),
        Op::gemm_n(OpKind::LmHead, 1, 96, 640, 1), // memory-bound tail
    ];
    let trace = Trace::from_ops(ops);
    for cfg in configs() {
        let sim = Simulator::new(cfg.clone());
        let analytic = sim.analytic_report(&trace);
        let ws = sim.schedule_trace(&trace, DataflowPolicy::WeightStationary);
        // The strict guarantee belongs to the default weight-stationary
        // dataflow: its per-supertile segments are the finest grain, so
        // loads always hide under adjacent compute at least as well as
        // the closed form assumes.
        assert_eq!(ws.total.cycles, analytic.cycles, "{}", cfg.name);
        assert!(
            ws.total.latency.value() <= analytic.latency.value() * (1.0 + 1e-9),
            "{}: WS {} > closed form {}",
            cfg.name,
            ws.total.latency.value(),
            analytic.latency.value()
        );
        // Coarser loop orders issue the same cycles but can only add
        // stalls (front-loaded streaming, buffer drains) or refetch
        // traffic — that asymmetry is the dataflow lever the sweep
        // exposes, and it can legitimately exceed the closed form's
        // uniform-overlap assumption.
        for policy in [
            DataflowPolicy::OutputStationary,
            DataflowPolicy::InputStationary,
        ] {
            let s = sim.schedule_trace(&trace, policy);
            assert_eq!(s.total.cycles, analytic.cycles, "{} {policy}", cfg.name);
            assert!(
                s.total.latency.value() >= ws.total.latency.value() * (1.0 - 1e-9),
                "{} {policy}: coarser grain beat weight-stationary: {} < {}",
                cfg.name,
                s.total.latency.value(),
                ws.total.latency.value()
            );
            assert!(
                s.hbm_bytes >= ws.hbm_bytes * (1.0 - 1e-9),
                "{} {policy}",
                cfg.name
            );
        }
    }
}
