//! The pluggable compute-backend abstraction.
//!
//! Every matrix-multiplication provider in the workspace — the exact CPU
//! kernel, the DPTC photonic tensor core at its three fidelities, and the
//! MZI/MRR/PCM/SVD baseline accelerators — implements [`ComputeBackend`].
//! Swapping the physics under a workload is a backend swap, not a code
//! path: the algorithmic layers (`lt-nn`, experiments, examples) only see
//! `gemm(a, b, ctx)`.
//!
//! [`RunCtx`] carries the reproducibility state: a run seed and a call
//! counter from which stochastic backends derive fresh, deterministic
//! per-call noise streams.

use crate::matrix::{Matrix64, MatrixView};
use std::fmt;

/// Per-run execution context shared by every backend call.
///
/// Stochastic backends (analog noise, programming variability) must draw
/// their randomness from seeds produced by [`RunCtx::next_seed`] so that a
/// whole run is reproducible from one root seed while every call still
/// sees a fresh noise realization.
///
/// ```
/// use lt_core::RunCtx;
/// let mut a = RunCtx::new(42);
/// let mut b = RunCtx::new(42);
/// assert_eq!(a.next_seed(), b.next_seed(), "same root seed, same stream");
/// assert_ne!(a.next_seed(), b.seed(), "per-call seeds differ from the root");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCtx {
    seed: u64,
    calls: u64,
}

impl RunCtx {
    /// Creates a context from a root seed.
    pub fn new(seed: u64) -> Self {
        RunCtx { seed, calls: 0 }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of per-call seeds handed out so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Derives the next per-call seed (SplitMix64 over root seed and call
    /// index) and advances the call counter.
    pub fn next_seed(&mut self) -> u64 {
        self.calls += 1;
        let mut z = self
            .seed
            .wrapping_add(self.calls.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx::new(0)
    }
}

/// A pluggable matrix-multiplication provider.
///
/// The contract is shape-polymorphic: `gemm` accepts arbitrary `m x d`
/// by `d x n` operands; hardware-tiled backends do their own tiling
/// internally. Deterministic backends ignore the context; stochastic ones
/// must derive all randomness from [`RunCtx::next_seed`].
pub trait ComputeBackend: fmt::Debug {
    /// A short human-readable backend name (for reports and logs).
    fn name(&self) -> &str;

    /// Computes `a x b`.
    ///
    /// # Panics
    ///
    /// Implementations panic if the inner dimensions disagree.
    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, ctx: &mut RunCtx) -> Matrix64;

    /// Computes a batch of independent products. The default forwards to
    /// [`ComputeBackend::gemm`] per pair; hardware backends may override
    /// to amortize setup (e.g. one wavelength-coefficient table per
    /// batch).
    fn gemm_batch(
        &self,
        pairs: &[(MatrixView<'_, f64>, MatrixView<'_, f64>)],
        ctx: &mut RunCtx,
    ) -> Vec<Matrix64> {
        pairs.iter().map(|&(a, b)| self.gemm(a, b, ctx)).collect()
    }

    /// Computes `out += a x b` — the tiled/streaming entry point used when
    /// a caller accumulates partial products (e.g. blocked attention).
    /// The default computes the product and accumulates; backends with
    /// analog accumulation may override.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `a.rows() x b.cols()`.
    fn gemm_accumulate(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        out: &mut Matrix64,
        ctx: &mut RunCtx,
    ) {
        let partial = self.gemm(a, b, ctx);
        assert_eq!(
            out.shape(),
            partial.shape(),
            "gemm_accumulate output shape mismatch"
        );
        out.add_assign(&partial);
    }
}

/// The exact in-process backend: the shared tiled CPU kernel, full `f64`
/// precision, no noise. This is both the fastest backend and the
/// reference every physical backend is validated against.
///
/// ```
/// use lt_core::{ComputeBackend, Matrix64, NativeBackend, RunCtx};
/// let a = Matrix64::from_fn(3, 4, |i, j| (i + j) as f64);
/// let b = Matrix64::from_fn(4, 2, |i, j| (i as f64) - (j as f64));
/// let out = NativeBackend.gemm(a.view(), b.view(), &mut RunCtx::new(0));
/// assert_eq!(out, a.matmul(&b));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeBackend;

impl ComputeBackend for NativeBackend {
    fn name(&self) -> &str {
        "native"
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, _ctx: &mut RunCtx) -> Matrix64 {
        a.matmul(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::reference_gemm;
    use crate::noise::GaussianSampler;

    #[test]
    fn native_backend_is_the_shared_kernel() {
        let mut rng = GaussianSampler::new(1);
        let a = Matrix64::randn(7, 5, 1.0, &mut rng);
        let b = Matrix64::randn(5, 9, 1.0, &mut rng);
        let mut ctx = RunCtx::new(0);
        let got = NativeBackend.gemm(a.view(), b.view(), &mut ctx);
        assert_eq!(got, a.matmul(&b), "bit-for-bit the shared kernel");
        let reference = reference_gemm(&a.view(), &b.view());
        assert!(got.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn batch_default_matches_individual_calls() {
        let mut rng = GaussianSampler::new(2);
        let a = Matrix64::randn(4, 3, 1.0, &mut rng);
        let b = Matrix64::randn(3, 4, 1.0, &mut rng);
        let c = Matrix64::randn(4, 2, 1.0, &mut rng);
        let outs = NativeBackend.gemm_batch(
            &[(a.view(), b.view()), (b.view(), c.view())],
            &mut RunCtx::new(0),
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], a.matmul(&b));
        assert_eq!(outs[1], b.matmul(&c));
    }

    #[test]
    fn accumulate_adds_partials() {
        let a = Matrix64::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix64::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let mut out = Matrix64::zeros(2, 2);
        let mut ctx = RunCtx::new(0);
        NativeBackend.gemm_accumulate(a.view(), b.view(), &mut out, &mut ctx);
        NativeBackend.gemm_accumulate(a.view(), b.view(), &mut out, &mut ctx);
        assert_eq!(out, a.matmul(&b).scale(2.0));
    }

    #[test]
    fn run_ctx_streams_are_deterministic_and_fresh() {
        let mut a = RunCtx::new(7);
        let mut b = RunCtx::new(7);
        let sa: Vec<u64> = (0..8).map(|_| a.next_seed()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_seed()).collect();
        assert_eq!(sa, sb);
        let unique: std::collections::HashSet<u64> = sa.iter().copied().collect();
        assert_eq!(unique.len(), sa.len(), "every call gets a fresh seed");
        assert_eq!(a.calls(), 8);
    }
}
