//! The pluggable compute-backend abstraction.
//!
//! Every matrix-multiplication provider in the workspace — the exact CPU
//! kernel, the DPTC photonic tensor core at its three fidelities, and the
//! MZI/MRR/PCM/SVD baseline accelerators — implements [`ComputeBackend`].
//! Swapping the physics under a workload is a backend swap, not a code
//! path: the algorithmic layers (`lt-nn`, experiments, examples) only see
//! `gemm(a, b, ctx)`.
//!
//! [`RunCtx`] carries the reproducibility state: a run seed and a call
//! counter from which stochastic backends derive fresh, deterministic
//! per-call noise streams.

use crate::matrix::{Matrix64, MatrixView};
use crate::trace::{Op, OpKind, TraceRecorder};
use std::fmt;

/// Derives the noise-stream seed of row block `index` of a backend call
/// whose call-level seed is `call_seed`.
///
/// This is the seed-partitioning contract that makes blocked (and
/// parallel) execution order-independent: every row block of a GEMM owns
/// a noise stream rooted at `split_seed(call_seed, block_index)`, so the
/// result of a blocked GEMM does not depend on which thread computes
/// which block, or in which order. [`blocked_gemm`] and the `lt-runtime`
/// parallel backend both use this exact derivation — that is what makes
/// them bit-identical.
///
/// ```
/// use lt_core::backend::split_seed;
/// assert_eq!(split_seed(42, 3), split_seed(42, 3), "deterministic");
/// assert_ne!(split_seed(42, 3), split_seed(42, 4), "fresh per block");
/// assert_ne!(split_seed(42, 0), split_seed(43, 0), "fresh per call");
/// ```
pub fn split_seed(call_seed: u64, index: u64) -> u64 {
    // SplitMix64 finalizer over an odd-constant index mix. The increment
    // differs from `RunCtx::next_seed` so call-level and block-level
    // streams cannot collide.
    let mut z = call_seed ^ (index.wrapping_add(1)).wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The canonical partition of `m` output rows into blocks of
/// `granularity` rows (the last block may be short). Returns
/// `(row_offset, rows)` pairs in order.
///
/// Blocked sequential execution ([`blocked_gemm`]) and the `lt-runtime`
/// thread pool partition work with this one function, so both walk
/// identical blocks with identical [`split_seed`] indices.
///
/// ```
/// use lt_core::backend::row_blocks;
/// assert_eq!(row_blocks(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
/// assert_eq!(row_blocks(3, 8), vec![(0, 3)]);
/// assert_eq!(row_blocks(0, 8), vec![]);
/// ```
pub fn row_blocks(m: usize, granularity: usize) -> Vec<(usize, usize)> {
    let g = granularity.max(1);
    (0..m.div_ceil(g))
        .map(|k| (k * g, g.min(m - k * g)))
        .collect()
}

/// Per-run execution context shared by every backend call.
///
/// Stochastic backends (analog noise, programming variability) must draw
/// their randomness from seeds produced by [`RunCtx::next_seed`] so that a
/// whole run is reproducible from one root seed while every call still
/// sees a fresh noise realization.
///
/// A context may optionally carry a [`TraceRecorder`]
/// ([`RunCtx::with_recorder`]): callers that route products through
/// [`ComputeBackend::gemm_traced`] (or call [`RunCtx::record`] directly)
/// then leave an op-trace IR of the run as a side effect. Recording is
/// pure observability — it never changes seeds, results, or equality.
///
/// ```
/// use lt_core::RunCtx;
/// let mut a = RunCtx::new(42);
/// let mut b = RunCtx::new(42);
/// assert_eq!(a.next_seed(), b.next_seed(), "same root seed, same stream");
/// assert_ne!(a.next_seed(), b.seed(), "per-call seeds differ from the root");
/// ```
#[derive(Debug, Clone)]
pub struct RunCtx {
    seed: u64,
    calls: u64,
    recorder: Option<TraceRecorder>,
}

// Equality is the execution state (seed stream position) only; an
// attached recorder observes a run without being part of it.
impl PartialEq for RunCtx {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.calls == other.calls
    }
}

impl Eq for RunCtx {}

impl RunCtx {
    /// Creates a context from a root seed.
    pub fn new(seed: u64) -> Self {
        RunCtx {
            seed,
            calls: 0,
            recorder: None,
        }
    }

    /// Attaches an op-trace recorder (keep a clone to drain it later).
    pub fn with_recorder(mut self, recorder: TraceRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Records one op if a recorder is attached; a no-op otherwise.
    pub fn record(&self, op: Op) {
        if let Some(rec) = &self.recorder {
            rec.record(op);
        }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of per-call seeds handed out so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Derives the next per-call seed (SplitMix64 over root seed and call
    /// index) and advances the call counter.
    pub fn next_seed(&mut self) -> u64 {
        self.calls += 1;
        let mut z = self
            .seed
            .wrapping_add(self.calls.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx::new(0)
    }
}

/// A pluggable matrix-multiplication provider.
///
/// The contract is shape-polymorphic: `gemm` accepts arbitrary `m x d`
/// by `d x n` operands; hardware-tiled backends do their own tiling
/// internally. Deterministic backends ignore the context; stochastic ones
/// must derive all randomness from [`RunCtx::next_seed`].
///
/// Swapping the physics under a workload is a value swap, not a code
/// path — and backends compose: `lt-runtime`'s `ParallelBackend`
/// implements this same trait over any inner backend.
///
/// ```
/// use lt_core::{ComputeBackend, Matrix64, NativeBackend, RunCtx};
///
/// fn run(backend: &dyn ComputeBackend, seed: u64) -> Matrix64 {
///     let a = Matrix64::from_fn(6, 4, |i, j| (i * 4 + j) as f64);
///     let b = Matrix64::from_fn(4, 5, |i, j| (i as f64) - (j as f64));
///     backend.gemm(a.view(), b.view(), &mut RunCtx::new(seed))
/// }
///
/// // The algorithmic layer never names a concrete backend.
/// let out = run(&NativeBackend, 42);
/// assert_eq!(out.shape(), (6, 5));
/// ```
pub trait ComputeBackend: fmt::Debug {
    /// A short human-readable backend name (for reports and logs).
    fn name(&self) -> &str;

    /// Computes `a x b`.
    ///
    /// # Panics
    ///
    /// Implementations panic if the inner dimensions disagree.
    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, ctx: &mut RunCtx) -> Matrix64;

    /// As [`ComputeBackend::gemm`], but writes the product into a
    /// caller-provided matrix (reshaped in place, allocation reused) —
    /// the steady-state entry point for loops that issue the same
    /// shapes every iteration, e.g. per-token decode. The default
    /// delegates to `gemm` and moves the result, so every backend's
    /// exact semantics (values, seed-stream advancement, panics) carry
    /// over unchanged; allocation-free backends override it
    /// ([`NativeBackend`] writes straight through the kernel's
    /// [`crate::kernel::tiled_gemm_into`]). Overrides must stay
    /// bit-identical to `gemm` — the result may never depend on which
    /// entry point computed it.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree (as `gemm` does).
    fn gemm_into(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        ctx: &mut RunCtx,
        out: &mut Matrix64,
    ) {
        *out = self.gemm(a, b, ctx);
    }

    /// As [`ComputeBackend::gemm`], but first records the product (with
    /// its workload role) into the context's attached
    /// [`TraceRecorder`], if any. This is the raw-`lt-core` entry point
    /// of the op-trace IR: route products through it and the run leaves
    /// a replayable [`crate::trace::Trace`] behind. Plain `gemm` never
    /// records, so layered callers that do their own (role-aware)
    /// recording — e.g. `lt-nn`'s forward context — cannot double-count.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree (as `gemm` does).
    fn gemm_traced(
        &self,
        kind: OpKind,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        ctx: &mut RunCtx,
    ) -> Matrix64 {
        ctx.record(Op::gemm(kind, a.rows(), a.cols(), b.cols()));
        self.gemm(a, b, ctx)
    }

    /// Computes a batch of independent products. The default forwards to
    /// [`ComputeBackend::gemm`] per pair; hardware backends may override
    /// to amortize setup (e.g. one wavelength-coefficient table per
    /// batch).
    fn gemm_batch(
        &self,
        pairs: &[(MatrixView<'_, f64>, MatrixView<'_, f64>)],
        ctx: &mut RunCtx,
    ) -> Vec<Matrix64> {
        pairs.iter().map(|&(a, b)| self.gemm(a, b, ctx)).collect()
    }

    /// The natural output-row granularity of this backend's kernel — the
    /// row-block size that blocked and parallel execution partition work
    /// at (e.g. the DPTC's `Nh` crossbar height). Must be stable for the
    /// lifetime of the backend value; defaults to one row.
    fn preferred_block_rows(&self) -> usize {
        1
    }

    /// Computes one row block `a_rows x b` with every stochastic draw
    /// rooted at `block_seed` (see [`split_seed`]).
    ///
    /// This is the unit of work the blocked/parallel execution paths
    /// dispatch: `a_rows` is a horizontal strip of the left operand (at
    /// most [`ComputeBackend::preferred_block_rows`] rows) and the result
    /// is the corresponding strip of output rows. The default runs the
    /// backend's plain [`ComputeBackend::gemm`] under a fresh context
    /// seeded with `block_seed`, which is correct for every backend
    /// whose `gemm` is a real implementation.
    ///
    /// **If you route `gemm` through [`blocked_gemm`]** (as the DPTC
    /// does, so its full-GEMM noise stream equals the blocked one) you
    /// **must also override `gemm_block`**: the default forwards to
    /// `gemm`, so leaving it in place would recurse
    /// `gemm -> blocked_gemm -> gemm_block -> gemm -> ...` until the
    /// stack overflows.
    ///
    /// # Panics
    ///
    /// Implementations panic if the inner dimensions disagree.
    fn gemm_block(
        &self,
        a_rows: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        block_seed: u64,
    ) -> Matrix64 {
        self.gemm(a_rows, b, &mut RunCtx::new(block_seed))
    }

    /// Computes `out += a x b` — the tiled/streaming entry point used when
    /// a caller accumulates partial products (e.g. blocked attention).
    /// The default computes the product and accumulates; backends with
    /// analog accumulation may override.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `a.rows() x b.cols()`.
    fn gemm_accumulate(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        out: &mut Matrix64,
        ctx: &mut RunCtx,
    ) {
        let partial = self.gemm(a, b, ctx);
        assert_eq!(
            out.shape(),
            partial.shape(),
            "gemm_accumulate output shape mismatch"
        );
        out.add_assign(&partial);
    }
}

/// The canonical blocked GEMM: one call-level seed from `ctx`, the
/// [`row_blocks`] partition at the backend's preferred granularity, one
/// [`ComputeBackend::gemm_block`] per block with its [`split_seed`]-
/// derived noise stream, results stacked in row order.
///
/// This sequential loop *defines* the reference output of parallel
/// execution: `lt-runtime`'s `ParallelBackend` runs exactly these work
/// items on a thread pool and is therefore bit-identical to this
/// function for every backend and thread count. Backends whose plain
/// `gemm` is itself routed through `blocked_gemm` (the DPTC) are in turn
/// bit-identical to their parallel wrapper.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
///
/// ```
/// use lt_core::{blocked_gemm, ComputeBackend, Matrix64, NativeBackend, RunCtx};
/// let a = Matrix64::from_fn(5, 4, |i, j| (i * 4 + j) as f64);
/// let b = Matrix64::from_fn(4, 3, |i, j| (i as f64) - (j as f64));
/// let blocked = blocked_gemm(&NativeBackend, a.view(), b.view(), &mut RunCtx::new(7));
/// // The exact kernel computes rows independently, so blocked == whole.
/// assert_eq!(blocked, a.matmul(&b));
/// ```
pub fn blocked_gemm<B: ComputeBackend + ?Sized>(
    backend: &B,
    a: MatrixView<'_, f64>,
    b: MatrixView<'_, f64>,
    ctx: &mut RunCtx,
) -> Matrix64 {
    blocked_gemm_with_seed(backend, a, b, ctx.next_seed())
}

/// [`blocked_gemm`] with the call-level seed already drawn — the single
/// canonical loop both the sequential and (for its inline/one-pair
/// paths) the parallel runtime execute, so the partition and seed
/// schedule exist in exactly one place.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn blocked_gemm_with_seed<B: ComputeBackend + ?Sized>(
    backend: &B,
    a: MatrixView<'_, f64>,
    b: MatrixView<'_, f64>,
    call_seed: u64,
) -> Matrix64 {
    assert_eq!(
        a.cols(),
        b.rows(),
        "blocked_gemm shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix64::zeros(m, n);
    for (idx, (r0, nrows)) in row_blocks(m, backend.preferred_block_rows())
        .into_iter()
        .enumerate()
    {
        let strip = backend.gemm_block(
            a.block(r0, 0, nrows, k),
            b,
            split_seed(call_seed, idx as u64),
        );
        assert_eq!(strip.shape(), (nrows, n), "gemm_block shape mismatch");
        for i in 0..nrows {
            out.row_mut(r0 + i).copy_from_slice(strip.row(i));
        }
    }
    out
}

/// The exact in-process backend: the shared tiled CPU kernel, full `f64`
/// precision, no noise. This is both the fastest backend and the
/// reference every physical backend is validated against.
///
/// ```
/// use lt_core::{ComputeBackend, Matrix64, NativeBackend, RunCtx};
/// let a = Matrix64::from_fn(3, 4, |i, j| (i + j) as f64);
/// let b = Matrix64::from_fn(4, 2, |i, j| (i as f64) - (j as f64));
/// let out = NativeBackend.gemm(a.view(), b.view(), &mut RunCtx::new(0));
/// assert_eq!(out, a.matmul(&b));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeBackend;

impl ComputeBackend for NativeBackend {
    fn name(&self) -> &str {
        "native"
    }

    fn gemm(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>, _ctx: &mut RunCtx) -> Matrix64 {
        a.matmul(&b)
    }

    fn gemm_into(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        _ctx: &mut RunCtx,
        out: &mut Matrix64,
    ) {
        // Exact kernel, caller's buffer: zero allocations in steady
        // state, bit-identical to `gemm` (one loop nest computes both).
        a.matmul_into(&b, out);
    }

    fn preferred_block_rows(&self) -> usize {
        // The kernel computes output rows independently, so any block
        // size is bit-identical; 16 rows keeps per-block dispatch
        // overhead negligible against the O(k*n) work per row.
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::reference_gemm;
    use crate::noise::GaussianSampler;

    #[test]
    fn native_backend_is_the_shared_kernel() {
        let mut rng = GaussianSampler::new(1);
        let a = Matrix64::randn(7, 5, 1.0, &mut rng);
        let b = Matrix64::randn(5, 9, 1.0, &mut rng);
        let mut ctx = RunCtx::new(0);
        let got = NativeBackend.gemm(a.view(), b.view(), &mut ctx);
        assert_eq!(got, a.matmul(&b), "bit-for-bit the shared kernel");
        let reference = reference_gemm(&a.view(), &b.view());
        assert!(got.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn batch_default_matches_individual_calls() {
        let mut rng = GaussianSampler::new(2);
        let a = Matrix64::randn(4, 3, 1.0, &mut rng);
        let b = Matrix64::randn(3, 4, 1.0, &mut rng);
        let c = Matrix64::randn(4, 2, 1.0, &mut rng);
        let outs = NativeBackend.gemm_batch(
            &[(a.view(), b.view()), (b.view(), c.view())],
            &mut RunCtx::new(0),
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], a.matmul(&b));
        assert_eq!(outs[1], b.matmul(&c));
    }

    #[test]
    fn accumulate_adds_partials() {
        let a = Matrix64::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix64::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let mut out = Matrix64::zeros(2, 2);
        let mut ctx = RunCtx::new(0);
        NativeBackend.gemm_accumulate(a.view(), b.view(), &mut out, &mut ctx);
        NativeBackend.gemm_accumulate(a.view(), b.view(), &mut out, &mut ctx);
        assert_eq!(out, a.matmul(&b).scale(2.0));
    }

    #[test]
    fn blocked_gemm_matches_whole_gemm_on_exact_backends() {
        let mut rng = GaussianSampler::new(3);
        // Deliberately not a multiple of the block granularity.
        let a = Matrix64::randn(37, 19, 1.0, &mut rng);
        let b = Matrix64::randn(19, 11, 1.0, &mut rng);
        let blocked = blocked_gemm(&NativeBackend, a.view(), b.view(), &mut RunCtx::new(5));
        let whole = NativeBackend.gemm(a.view(), b.view(), &mut RunCtx::new(5));
        assert_eq!(blocked, whole, "row-independent kernel: bit-identical");
    }

    #[test]
    fn blocked_gemm_advances_the_call_counter_once() {
        let a = Matrix64::zeros(9, 4);
        let b = Matrix64::zeros(4, 2);
        let mut ctx = RunCtx::new(1);
        let _ = blocked_gemm(&NativeBackend, a.view(), b.view(), &mut ctx);
        assert_eq!(ctx.calls(), 1, "one call-level seed per blocked GEMM");
    }

    #[test]
    fn row_blocks_cover_every_row_exactly_once() {
        for m in [0usize, 1, 5, 12, 13, 100] {
            for g in [1usize, 4, 12, 200] {
                let blocks = row_blocks(m, g);
                let covered: usize = blocks.iter().map(|&(_, n)| n).sum();
                assert_eq!(covered, m, "m={m} g={g}");
                let mut next = 0;
                for &(r0, n) in &blocks {
                    assert_eq!(r0, next, "contiguous in order");
                    assert!(n >= 1 && n <= g);
                    next = r0 + n;
                }
            }
        }
    }

    #[test]
    fn split_seed_partitions_are_disjoint_across_blocks_and_calls() {
        let mut seen = std::collections::HashSet::new();
        for call in 0..16u64 {
            for block in 0..16u64 {
                assert!(seen.insert(split_seed(call, block)), "collision");
            }
        }
    }

    #[test]
    fn gemm_traced_records_without_changing_results_or_seeds() {
        use crate::trace::{Op, OpKind, TraceRecorder};
        let a = Matrix64::from_fn(3, 4, |i, j| (i + j) as f64);
        let b = Matrix64::from_fn(4, 2, |i, j| (i as f64) - (j as f64));
        let rec = TraceRecorder::new();
        let mut traced = RunCtx::new(9).with_recorder(rec.clone());
        let mut plain = RunCtx::new(9);
        let got = NativeBackend.gemm_traced(OpKind::Ffn1, a.view(), b.view(), &mut traced);
        let want = NativeBackend.gemm(a.view(), b.view(), &mut plain);
        assert_eq!(got, want, "recording never perturbs the result");
        assert_eq!(traced, plain, "recording never perturbs the seed stream");
        assert_eq!(rec.take().ops(), &[Op::gemm(OpKind::Ffn1, 3, 4, 2)]);
        // Without a recorder, gemm_traced degrades to plain gemm.
        let _ = NativeBackend.gemm_traced(OpKind::Ffn1, a.view(), b.view(), &mut plain);
        assert!(plain.recorder().is_none());
    }

    #[test]
    fn run_ctx_streams_are_deterministic_and_fresh() {
        let mut a = RunCtx::new(7);
        let mut b = RunCtx::new(7);
        let sa: Vec<u64> = (0..8).map(|_| a.next_seed()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_seed()).collect();
        assert_eq!(sa, sb);
        let unique: std::collections::HashSet<u64> = sa.iter().copied().collect();
        assert_eq!(unique.len(), sa.len(), "every call gets a fresh seed");
        assert_eq!(a.calls(), 8);
    }
}
