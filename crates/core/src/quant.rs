//! Symmetric uniform quantization for MZM operand encoding, and the
//! true integer execution path.
//!
//! Operands are normalized into `[-1, 1]` (by their per-tile maximum
//! absolute value, paper Section III-C) and driven onto the modulators by
//! `b`-bit DACs; outputs are digitized by `b`-bit ADCs. This module
//! provides the symmetric mid-tread quantizer used on both sides.
//!
//! On top of the scalar [`Quantizer`], the module hosts the executable
//! integer path for the paper's 8-bit/4-bit work modes:
//! [`QuantizedMatrix`] stores `i8`/`i4` codes (4-bit codes packed two
//! per byte) with grouped per-channel scales — each row (activations)
//! or column (weights) is split into [`QuantizedMatrix::group_size`]-wide
//! groups along the reduction dimension, each group carrying its own
//! scale, in the spirit of GPTQ-style grouped quantization — and
//! [`quantized_gemm`] multiplies two such matrices with exact `i32`
//! accumulation inside each group and `f32` accumulation across groups.

use crate::matrix::{Matrix32, MatrixView};

/// A symmetric uniform quantizer over `[-1, 1]` with `2^(bits-1) - 1`
/// positive levels (mid-tread, zero exactly representable).
///
/// ```
/// use lt_core::Quantizer;
/// let q = Quantizer::new(4);
/// assert_eq!(q.positive_levels(), 7);
/// assert_eq!(q.quantize_unit(1.0), 1.0);
/// assert_eq!(q.quantize_unit(0.0), 0.0);
/// // 4-bit step is 1/7.
/// assert!((q.quantize_unit(0.1) - 1.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantizer {
    bits: u32,
}

impl Quantizer {
    /// Creates a `bits`-bit quantizer.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "quantizer precision {bits} outside supported range [2, 16]"
        );
        Quantizer { bits }
    }

    /// The bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of positive quantization levels (`2^(bits-1) - 1`).
    pub fn positive_levels(&self) -> u32 {
        (1u32 << (self.bits - 1)) - 1
    }

    /// The quantization step size.
    pub fn step(&self) -> f64 {
        1.0 / self.positive_levels() as f64
    }

    /// Quantizes a value already normalized to `[-1, 1]`. Values outside
    /// the range are clamped (saturating quantization).
    pub fn quantize_unit(&self, v: f64) -> f64 {
        let levels = self.positive_levels() as f64;
        (v.clamp(-1.0, 1.0) * levels).round() / levels
    }

    /// Quantizes a slice in place (normalized values).
    pub fn quantize_slice(&self, values: &mut [f64]) {
        for v in values {
            *v = self.quantize_unit(*v);
        }
    }

    /// Quantizes a general value given its scale (`max_abs`), returning the
    /// dequantized result. `scale <= 0` passes the value through unchanged
    /// (an all-zero tensor has nothing to quantize).
    pub fn fake_quantize(&self, v: f64, scale: f64) -> f64 {
        if scale <= 0.0 {
            return v;
        }
        self.quantize_unit(v / scale) * scale
    }

    /// Worst-case quantization error for normalized inputs (half a step).
    pub fn max_error(&self) -> f64 {
        self.step() / 2.0
    }

    /// Quantizes one scale group to signed integer codes, returning the
    /// dequantization step (`max_abs / positive_levels`): the value a
    /// code of 1 dequantizes to. An all-zero group returns step 0 and
    /// all-zero codes. Per-element error is bounded by half the
    /// returned step.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn quantize_group(&self, values: &[f32], codes: &mut [i8]) -> f32 {
        assert_eq!(values.len(), codes.len(), "group length mismatch");
        let scale = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if scale == 0.0 {
            codes.fill(0);
            return 0.0;
        }
        let levels = self.positive_levels() as f32;
        let inv = levels / scale;
        for (c, &v) in codes.iter_mut().zip(values) {
            *c = (v * inv).round().clamp(-levels, levels) as i8;
        }
        scale / levels
    }
}

/// Which logical axis a [`QuantizedMatrix`]'s scale groups belong to.
///
/// Groups always run *along the reduction dimension* (`k`); the axis
/// names which side of the product owns the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupAxis {
    /// Channels are rows — the activation side of `x @ w` (an `m x k`
    /// matrix quantized per row, groups along `k`).
    PerRow,
    /// Channels are columns — the weight side of `x @ w` (a `k x n`
    /// matrix quantized per output channel, groups along `k`).
    PerCol,
}

/// An integer-quantized matrix: `i8` or packed `i4` codes with grouped
/// per-channel scales, the executable form of the paper's 8-bit/4-bit
/// work modes.
///
/// Codes are stored channel-major (each channel's `k` codes are
/// contiguous; a [`GroupAxis::PerCol`] matrix is therefore stored
/// transposed), so [`quantized_gemm`] walks both operands linearly.
/// 4-bit codes pack two per byte, halving weight memory for real.
///
/// ```
/// use lt_core::{quantized_gemm, Matrix32, QuantizedMatrix};
/// let x = Matrix32::from_fn(3, 8, |i, j| ((i * 8 + j) as f32 * 0.37).sin());
/// let w = Matrix32::from_fn(8, 5, |i, j| ((i + 2 * j) as f32 * 0.21).cos());
/// let xq = QuantizedMatrix::quantize_rows(&x.view(), 8, 4);
/// let wq = QuantizedMatrix::quantize_cols(&w.view(), 8, 4);
/// let y = quantized_gemm(&xq, &wq);
/// assert_eq!(y.shape(), (3, 5));
/// assert!(y.max_abs_diff(&x.matmul(&w)) < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    axis: GroupAxis,
    /// Number of channels (rows for `PerRow`, columns for `PerCol`).
    channels: usize,
    /// Reduction depth `k` (codes per channel).
    depth: usize,
    bits: u32,
    group: usize,
    /// Dequantization step per (channel, group): `scale / levels`.
    steps: Vec<f32>,
    /// Codes, channel-major. `i8`: one code per byte. `i4`: two codes
    /// per byte (low nibble = even `l`), each channel padded to a whole
    /// byte.
    codes: Vec<u8>,
}

impl QuantizedMatrix {
    fn quantize(view: &MatrixView<'_, f32>, axis: GroupAxis, bits: u32, group: usize) -> Self {
        assert!(
            bits == 4 || bits == 8,
            "integer execution supports 4 or 8 bits, got {bits}"
        );
        assert!(group > 0, "group size must be positive");
        let (channels, depth) = match axis {
            GroupAxis::PerRow => (view.rows(), view.cols()),
            GroupAxis::PerCol => (view.cols(), view.rows()),
        };
        let q = Quantizer::new(bits);
        let n_groups = depth.div_ceil(group);
        let mut steps = Vec::with_capacity(channels * n_groups);
        let mut flat = vec![0i8; depth];
        let mut chan = vec![0.0f32; depth];
        let bytes_per_channel = Self::bytes_per_channel(bits, depth);
        let mut codes = vec![0u8; channels * bytes_per_channel];
        for ch in 0..channels {
            match axis {
                GroupAxis::PerRow => chan.copy_from_slice(view.row(ch)),
                GroupAxis::PerCol => {
                    for (l, c) in chan.iter_mut().enumerate() {
                        *c = view.get(l, ch);
                    }
                }
            }
            let mut g0 = 0;
            while g0 < depth {
                let g1 = (g0 + group).min(depth);
                steps.push(q.quantize_group(&chan[g0..g1], &mut flat[g0..g1]));
                g0 += group;
            }
            let dst = &mut codes[ch * bytes_per_channel..(ch + 1) * bytes_per_channel];
            if bits == 8 {
                for (d, &c) in dst.iter_mut().zip(&flat) {
                    *d = c as u8;
                }
            } else {
                for (l, &c) in flat.iter().enumerate() {
                    let nib = (c as u8) & 0x0F;
                    if l % 2 == 0 {
                        dst[l / 2] = nib;
                    } else {
                        dst[l / 2] |= nib << 4;
                    }
                }
            }
        }
        QuantizedMatrix {
            axis,
            channels,
            depth,
            bits,
            group,
            steps,
            codes,
        }
    }

    fn bytes_per_channel(bits: u32, depth: usize) -> usize {
        if bits == 8 {
            depth
        } else {
            depth.div_ceil(2)
        }
    }

    /// Quantizes an `m x k` activation matrix per row, with `group`-wide
    /// scale groups along `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 4 or 8, or if `group == 0`.
    pub fn quantize_rows(view: &MatrixView<'_, f32>, bits: u32, group: usize) -> Self {
        Self::quantize(view, GroupAxis::PerRow, bits, group)
    }

    /// Quantizes a `k x n` weight matrix per output channel (column),
    /// with `group`-wide scale groups along `k` — GPTQ-style grouped
    /// per-channel scales. Stored transposed so the GEMM reads it
    /// linearly.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 4 or 8, or if `group == 0`.
    pub fn quantize_cols(view: &MatrixView<'_, f32>, bits: u32, group: usize) -> Self {
        Self::quantize(view, GroupAxis::PerCol, bits, group)
    }

    /// Which axis carries the channels.
    pub fn axis(&self) -> GroupAxis {
        self.axis
    }

    /// Logical rows of the original matrix.
    pub fn rows(&self) -> usize {
        match self.axis {
            GroupAxis::PerRow => self.channels,
            GroupAxis::PerCol => self.depth,
        }
    }

    /// Logical columns of the original matrix.
    pub fn cols(&self) -> usize {
        match self.axis {
            GroupAxis::PerRow => self.depth,
            GroupAxis::PerCol => self.channels,
        }
    }

    /// Code bit-width (4 or 8).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Scale-group width along the reduction dimension.
    pub fn group_size(&self) -> usize {
        self.group
    }

    /// Number of scale groups per channel.
    pub fn groups_per_channel(&self) -> usize {
        self.depth.div_ceil(self.group)
    }

    /// The dequantization step of one (channel, group): a code of 1
    /// dequantizes to this value, and per-element quantization error is
    /// bounded by half of it.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn step(&self, channel: usize, group_idx: usize) -> f32 {
        assert!(
            channel < self.channels && group_idx < self.groups_per_channel(),
            "step index out of bounds"
        );
        self.steps[channel * self.groups_per_channel() + group_idx]
    }

    /// Bytes of code storage (excludes scales) — `i4` really is half
    /// of `i8`.
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Decodes one channel's codes into `i8` values.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != k` or the channel is out of bounds.
    pub fn unpack_channel(&self, channel: usize, out: &mut [i8]) {
        assert_eq!(out.len(), self.depth, "unpack buffer length mismatch");
        let bpc = Self::bytes_per_channel(self.bits, self.depth);
        let src = &self.codes[channel * bpc..(channel + 1) * bpc];
        if self.bits == 8 {
            for (o, &b) in out.iter_mut().zip(src) {
                *o = b as i8;
            }
        } else {
            for (l, o) in out.iter_mut().enumerate() {
                let b = src[l / 2];
                *o = if l % 2 == 0 {
                    ((b << 4) as i8) >> 4
                } else {
                    (b as i8) >> 4
                };
            }
        }
    }

    /// Decodes every channel, channel-major (`channels * k` values).
    pub fn unpack(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.channels * self.depth];
        for ch in 0..self.channels {
            self.unpack_channel(ch, &mut out[ch * self.depth..(ch + 1) * self.depth]);
        }
        out
    }

    /// Reconstructs the (lossy) matrix in its original orientation.
    pub fn dequantize(&self) -> Matrix32 {
        let vals = self.unpack();
        let gpc = self.groups_per_channel();
        let dequant = |ch: usize, l: usize| {
            vals[ch * self.depth + l] as f32 * self.steps[ch * gpc + l / self.group]
        };
        match self.axis {
            GroupAxis::PerRow => Matrix32::from_fn(self.channels, self.depth, dequant),
            GroupAxis::PerCol => {
                Matrix32::from_fn(self.depth, self.channels, |l, ch| dequant(ch, l))
            }
        }
    }
}

/// Integer matrix product `a x b` of a [`GroupAxis::PerRow`]-quantized
/// activation and a [`GroupAxis::PerCol`]-quantized weight.
///
/// Inside each scale group the `i8 x i8` products accumulate exactly in
/// `i32`; group partial sums are scaled by both operands' group steps
/// and accumulated across groups in `f32`. The whole computation is
/// deterministic — no rounding depends on execution order — so parallel
/// and sequential schedules agree bit-for-bit by construction.
///
/// # Panics
///
/// Panics if the axes are wrong, the reduction depths disagree, or the
/// group sizes differ (group boundaries must line up).
pub fn quantized_gemm(a: &QuantizedMatrix, b: &QuantizedMatrix) -> Matrix32 {
    assert_eq!(a.axis, GroupAxis::PerRow, "lhs must be PerRow-quantized");
    assert_eq!(b.axis, GroupAxis::PerCol, "rhs must be PerCol-quantized");
    assert_eq!(
        a.depth,
        b.depth,
        "quantized_gemm shape mismatch: {}x{} x {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(a.group, b.group, "group size mismatch");
    let (m, k, n) = (a.channels, a.depth, b.channels);
    let group = a.group;
    let gpc = a.groups_per_channel();
    let a_vals = a.unpack();
    let b_vals = b.unpack();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a_vals[i * k..(i + 1) * k];
        let asteps = &a.steps[i * gpc..(i + 1) * gpc];
        for j in 0..n {
            let brow = &b_vals[j * k..(j + 1) * k];
            let bsteps = &b.steps[j * gpc..(j + 1) * gpc];
            let mut acc = 0.0f32;
            let mut g0 = 0;
            let mut g = 0;
            while g0 < k {
                let g1 = (g0 + group).min(k);
                let mut isum = 0i32;
                for (&qa, &qb) in arow[g0..g1].iter().zip(&brow[g0..g1]) {
                    isum += qa as i32 * qb as i32;
                }
                acc += isum as f32 * asteps[g] * bsteps[g];
                g0 += group;
                g += 1;
            }
            out[i * n + j] = acc;
        }
    }
    Matrix32::from_vec(m, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_bit_width() {
        assert_eq!(Quantizer::new(4).positive_levels(), 7);
        assert_eq!(Quantizer::new(8).positive_levels(), 127);
        assert_eq!(Quantizer::new(2).positive_levels(), 1);
    }

    #[test]
    fn quantization_is_idempotent() {
        let q = Quantizer::new(4);
        for i in -20..=20 {
            let v = i as f64 / 20.0;
            let once = q.quantize_unit(v);
            assert_eq!(q.quantize_unit(once), once);
        }
    }

    #[test]
    fn error_is_bounded_by_half_step() {
        let q = Quantizer::new(8);
        for i in -1000..=1000 {
            let v = i as f64 / 1000.0;
            assert!((q.quantize_unit(v) - v).abs() <= q.max_error() + 1e-12);
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let q = Quantizer::new(4);
        assert_eq!(q.quantize_unit(2.5), 1.0);
        assert_eq!(q.quantize_unit(-7.0), -1.0);
    }

    #[test]
    fn symmetric_around_zero() {
        let q = Quantizer::new(6);
        for i in 0..=100 {
            let v = i as f64 / 100.0;
            assert_eq!(q.quantize_unit(v), -q.quantize_unit(-v));
        }
    }

    #[test]
    fn fake_quantize_respects_scale() {
        let q = Quantizer::new(4);
        let v = 3.1;
        let scale = 4.0;
        let fq = q.fake_quantize(v, scale);
        assert!((fq - v).abs() <= q.max_error() * scale + 1e-12);
        // Zero scale passes through.
        assert_eq!(q.fake_quantize(v, 0.0), v);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn rejects_one_bit() {
        Quantizer::new(1);
    }

    use crate::noise::GaussianSampler;

    #[test]
    fn quantize_group_bounds_error_by_half_step() {
        let q = Quantizer::new(8);
        let vals: Vec<f32> = (0..16).map(|i| ((i * 7) as f32 * 0.13).sin()).collect();
        let mut codes = vec![0i8; 16];
        let step = q.quantize_group(&vals, &mut codes);
        for (&v, &c) in vals.iter().zip(&codes) {
            assert!((v - c as f32 * step).abs() <= step / 2.0 + 1e-6);
        }
        // All-zero group: zero step, zero codes.
        let step0 = q.quantize_group(&[0.0; 4], &mut codes[..4]);
        assert_eq!(step0, 0.0);
        assert!(codes[..4].iter().all(|&c| c == 0));
    }

    #[test]
    fn i4_pack_round_trips() {
        let mut rng = GaussianSampler::new(3);
        let m = crate::Matrix32::randn(5, 9, 1.0, &mut rng);
        let qm = QuantizedMatrix::quantize_rows(&m.view(), 4, 4);
        // Half the bytes of an i8 encoding (odd depth rounds up per row).
        assert_eq!(qm.code_bytes(), 5 * 5);
        let vals = qm.unpack();
        assert!(vals.iter().all(|&v| (-7..=7).contains(&v)));
        // Dequantize reconstructs within half a group step everywhere.
        let deq = qm.dequantize();
        for i in 0..5 {
            for j in 0..9 {
                let step = qm.step(i, j / 4);
                assert!((deq.get(i, j) - m.get(i, j)).abs() <= step / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn per_col_quantization_transposes_storage() {
        let w = crate::Matrix32::from_fn(6, 3, |i, j| (i * 3 + j) as f32 * 0.1 - 0.8);
        let qw = QuantizedMatrix::quantize_cols(&w.view(), 8, 2);
        assert_eq!((qw.rows(), qw.cols()), (6, 3));
        assert_eq!(qw.groups_per_channel(), 3);
        let deq = qw.dequantize();
        assert_eq!(deq.shape(), (6, 3));
        assert!(deq.max_abs_diff(&w) < 0.01);
    }

    #[test]
    fn quantized_gemm_tracks_exact_product() {
        let mut rng = GaussianSampler::new(17);
        let x = crate::Matrix32::randn(4, 24, 0.7, &mut rng);
        let w = crate::Matrix32::randn(24, 6, 0.5, &mut rng);
        let exact = x.matmul(&w);
        for &(bits, tol) in &[(8u32, 0.05f32), (4, 0.9)] {
            let xq = QuantizedMatrix::quantize_rows(&x.view(), bits, 8);
            let wq = QuantizedMatrix::quantize_cols(&w.view(), bits, 8);
            let y = quantized_gemm(&xq, &wq);
            assert!(
                y.max_abs_diff(&exact) < tol,
                "{bits}-bit drifted {}",
                y.max_abs_diff(&exact)
            );
        }
    }

    #[test]
    fn quantized_gemm_is_deterministic() {
        let mut rng = GaussianSampler::new(23);
        let x = crate::Matrix32::randn(3, 17, 1.0, &mut rng);
        let w = crate::Matrix32::randn(17, 5, 1.0, &mut rng);
        let xq = QuantizedMatrix::quantize_rows(&x.view(), 4, 5);
        let wq = QuantizedMatrix::quantize_cols(&w.view(), 4, 5);
        assert_eq!(quantized_gemm(&xq, &wq), quantized_gemm(&xq, &wq));
    }

    #[test]
    #[should_panic(expected = "lhs must be PerRow")]
    fn gemm_rejects_swapped_axes() {
        let m = crate::Matrix32::zeros(4, 4);
        let q = QuantizedMatrix::quantize_cols(&m.view(), 8, 4);
        let r = QuantizedMatrix::quantize_rows(&m.view(), 8, 4);
        quantized_gemm(&q, &r);
    }
}
