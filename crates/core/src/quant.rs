//! Symmetric uniform quantization for MZM operand encoding.
//!
//! Operands are normalized into `[-1, 1]` (by their per-tile maximum
//! absolute value, paper Section III-C) and driven onto the modulators by
//! `b`-bit DACs; outputs are digitized by `b`-bit ADCs. This module
//! provides the symmetric mid-tread quantizer used on both sides.

/// A symmetric uniform quantizer over `[-1, 1]` with `2^(bits-1) - 1`
/// positive levels (mid-tread, zero exactly representable).
///
/// ```
/// use lt_core::Quantizer;
/// let q = Quantizer::new(4);
/// assert_eq!(q.positive_levels(), 7);
/// assert_eq!(q.quantize_unit(1.0), 1.0);
/// assert_eq!(q.quantize_unit(0.0), 0.0);
/// // 4-bit step is 1/7.
/// assert!((q.quantize_unit(0.1) - 1.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantizer {
    bits: u32,
}

impl Quantizer {
    /// Creates a `bits`-bit quantizer.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "quantizer precision {bits} outside supported range [2, 16]"
        );
        Quantizer { bits }
    }

    /// The bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of positive quantization levels (`2^(bits-1) - 1`).
    pub fn positive_levels(&self) -> u32 {
        (1u32 << (self.bits - 1)) - 1
    }

    /// The quantization step size.
    pub fn step(&self) -> f64 {
        1.0 / self.positive_levels() as f64
    }

    /// Quantizes a value already normalized to `[-1, 1]`. Values outside
    /// the range are clamped (saturating quantization).
    pub fn quantize_unit(&self, v: f64) -> f64 {
        let levels = self.positive_levels() as f64;
        (v.clamp(-1.0, 1.0) * levels).round() / levels
    }

    /// Quantizes a slice in place (normalized values).
    pub fn quantize_slice(&self, values: &mut [f64]) {
        for v in values {
            *v = self.quantize_unit(*v);
        }
    }

    /// Quantizes a general value given its scale (`max_abs`), returning the
    /// dequantized result. `scale <= 0` passes the value through unchanged
    /// (an all-zero tensor has nothing to quantize).
    pub fn fake_quantize(&self, v: f64, scale: f64) -> f64 {
        if scale <= 0.0 {
            return v;
        }
        self.quantize_unit(v / scale) * scale
    }

    /// Worst-case quantization error for normalized inputs (half a step).
    pub fn max_error(&self) -> f64 {
        self.step() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_bit_width() {
        assert_eq!(Quantizer::new(4).positive_levels(), 7);
        assert_eq!(Quantizer::new(8).positive_levels(), 127);
        assert_eq!(Quantizer::new(2).positive_levels(), 1);
    }

    #[test]
    fn quantization_is_idempotent() {
        let q = Quantizer::new(4);
        for i in -20..=20 {
            let v = i as f64 / 20.0;
            let once = q.quantize_unit(v);
            assert_eq!(q.quantize_unit(once), once);
        }
    }

    #[test]
    fn error_is_bounded_by_half_step() {
        let q = Quantizer::new(8);
        for i in -1000..=1000 {
            let v = i as f64 / 1000.0;
            assert!((q.quantize_unit(v) - v).abs() <= q.max_error() + 1e-12);
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let q = Quantizer::new(4);
        assert_eq!(q.quantize_unit(2.5), 1.0);
        assert_eq!(q.quantize_unit(-7.0), -1.0);
    }

    #[test]
    fn symmetric_around_zero() {
        let q = Quantizer::new(6);
        for i in 0..=100 {
            let v = i as f64 / 100.0;
            assert_eq!(q.quantize_unit(v), -q.quantize_unit(-v));
        }
    }

    #[test]
    fn fake_quantize_respects_scale() {
        let q = Quantizer::new(4);
        let v = 3.1;
        let scale = 4.0;
        let fq = q.fake_quantize(v, scale);
        assert!((fq - v).abs() <= q.max_error() * scale + 1e-12);
        // Zero scale passes through.
        assert_eq!(q.fake_quantize(v, 0.0), v);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn rejects_one_bit() {
        Quantizer::new(1);
    }
}
