//! Foundation crate for the Lightening-Transformer workspace.
//!
//! Everything that computes a matrix product in this repository — the
//! DPTC photonic tensor core, the MZI/MRR/PCM baselines, and the NN
//! stack's engines — shares two abstractions defined here:
//!
//! * [`Matrix`] / [`MatrixView`] — a single flat, contiguous, row-major
//!   matrix type (with [`Matrix64`] / [`Matrix32`] aliases), borrow-based
//!   views/slices, and a cache-friendly shared matmul kernel. This
//!   replaces the seed's two incompatible representations (ragged
//!   `Vec<Vec<f64>>` and a separate `f32` tensor).
//! * [`ComputeBackend`] — the pluggable GEMM provider trait. Fidelity and
//!   physics are selected by swapping the backend, not by calling a
//!   different method: `gemm(a, b, ctx)` is the whole contract, with
//!   batched ([`ComputeBackend::gemm_batch`]) and accumulating
//!   ([`ComputeBackend::gemm_accumulate`]) entry points layered on top.
//! * [`trace`] — the op-trace IR ([`Op`], [`Trace`], [`TraceRecorder`]):
//!   a hardware-agnostic record of what a workload executed, emitted as
//!   a side effect of real execution (via [`RunCtx::with_recorder`] and
//!   [`ComputeBackend::gemm_traced`]) or derived analytically, and
//!   replayed by `lt-arch`'s simulator to cost the run.
//!
//! The crate also hosts [`noise::GaussianSampler`], the deterministic
//! noise source every stochastic model draws from, and [`RunCtx`], the
//! seed-streaming context that keeps stochastic backends reproducible.
//!
//! # Example: one workload, two backends
//!
//! ```
//! use lt_core::{ComputeBackend, Matrix64, NativeBackend, RunCtx};
//!
//! let a = Matrix64::from_fn(8, 8, |i, j| ((i * 8 + j) as f64 * 0.1).sin());
//! let b = Matrix64::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.1).cos());
//!
//! // Any ComputeBackend can serve the product; swap freely.
//! let backends: Vec<Box<dyn ComputeBackend>> = vec![Box::new(NativeBackend)];
//! let mut ctx = RunCtx::new(42);
//! for be in &backends {
//!     let out = be.gemm(a.view(), b.view(), &mut ctx);
//!     assert_eq!(out.shape(), (8, 8));
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod kernel;
pub mod matrix;
pub mod noise;
pub mod quant;
pub mod trace;

pub use backend::{
    blocked_gemm, blocked_gemm_with_seed, row_blocks, split_seed, ComputeBackend, NativeBackend,
    RunCtx,
};
pub use matrix::{reference_gemm, Matrix, Matrix32, Matrix64, MatrixView, Scalar};
pub use noise::GaussianSampler;
pub use quant::{quantized_gemm, GroupAxis, QuantizedMatrix, Quantizer};
pub use trace::{Module, NonGemmKind, Op, OpKind, OperandDynamics, Trace, TraceRecorder};
