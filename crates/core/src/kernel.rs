//! The shared register-blocked, cache-tiled GEMM micro-kernel.
//!
//! Every exact matrix product in the workspace — [`MatrixView::matmul`],
//! and through it `NativeBackend`, the ideal DPTC fidelity, the photonic
//! baselines, and the NN engines — lands in [`tiled_gemm`]. The kernel
//! uses the classic three-level blocking scheme:
//!
//! * **Register micro-tile** — an `MR x NR` accumulator block lives in
//!   registers across the whole reduction; the innermost loop is a
//!   rank-1 update over fixed-size slices, which the compiler
//!   autovectorizes for both `f32` and `f64`.
//! * **Cache chunks** — the reduction dimension is walked in [`KC`]-wide
//!   chunks; each chunk of the `B` panel is packed once into a
//!   fixed-size stack buffer and reused by every row strip, so the hot
//!   loop streams contiguous memory regardless of the caller's stride.
//! * **Packing buffers** — both operand panels are packed into
//!   stack-allocated arrays (`[T; KC * NR]` / `[T; KC * MR]`), so the
//!   kernel performs **zero heap allocations** beyond the output buffer
//!   — and [`tiled_gemm_into`] removes even that one for callers that
//!   provide (and reuse) the output matrix, e.g. per-token decode loops
//!   issuing the same shapes every step.
//!
//! # Bit-identity contract
//!
//! The kernel is *bit-identical* to [`reference_gemm`]: every output
//! element accumulates its `k` products in strictly increasing reduction
//! order into a single accumulator. Chunking does not break this —
//! between chunks the partial sum round-trips through the output buffer
//! (an exact operation for IEEE floats) and accumulation resumes in the
//! same order. Edge tiles are zero-padded in the packing buffers, and
//! padded lanes are simply never stored, so padding can never
//! contaminate a valid output. This is what lets `tests/` property
//! suites assert `tiled == naive` with `==` instead of a tolerance.
//!
//! [`reference_gemm`]: crate::matrix::reference_gemm

use crate::matrix::{Matrix, MatrixView, Scalar};

/// Register micro-tile height: output rows held in registers at once.
pub const MR: usize = 4;
/// Register micro-tile width: output columns held in registers at once.
pub const NR: usize = 8;
/// Cache-chunk depth: reduction elements packed per panel refill.
pub const KC: usize = 256;

/// The innermost register kernel: `kc` rank-1 updates of an `MR x NR`
/// accumulator block. `ap` is packed `l`-major (`MR` operands per step),
/// `bp` is packed `l`-major (`NR` operands per step).
#[inline(always)]
fn micro_kernel<T: Scalar>(kc: usize, ap: &[T], bp: &[T], acc: &mut [[T; NR]; MR]) {
    for l in 0..kc {
        let av: &[T; MR] = ap[l * MR..l * MR + MR].try_into().unwrap();
        let bv: &[T; NR] = bp[l * NR..l * NR + NR].try_into().unwrap();
        for r in 0..MR {
            let a = av[r];
            let row = &mut acc[r];
            for c in 0..NR {
                row[c] += a * bv[c];
            }
        }
    }
}

/// Register-blocked, cache-tiled matrix product `a x b`.
///
/// Bit-identical to [`reference_gemm`](crate::matrix::reference_gemm)
/// on every shape (see the module docs for why), including 0-sized,
/// `1 x k`, `k x 1`, and non-multiple-of-tile dimensions, and accepts
/// strided views on either operand.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn tiled_gemm<T: Scalar>(a: &MatrixView<'_, T>, b: &MatrixView<'_, T>) -> Matrix<T> {
    let mut out = Matrix::from_vec(0, 0, Vec::new());
    tiled_gemm_into(a, b, &mut out);
    out
}

/// As [`tiled_gemm`], but writes the product into a caller-provided
/// matrix — reshaped in place ([`Matrix::reset_zeroed`]), so a scratch
/// output cycled through a steady-state loop (per-token decode: the
/// same `[1, d] x [d, n]` shapes every step) performs zero heap
/// allocations once its buffer has grown to the largest shape seen.
///
/// The result is bit-identical to [`tiled_gemm`]: both run this one
/// loop nest over a zeroed output buffer.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn tiled_gemm_into<T: Scalar>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    out: &mut Matrix<T>,
) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    out.reset_zeroed(m, n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let out = out.data_mut();

    // Fixed-size stack packing buffers, reused across all panels.
    let mut bp = [T::ZERO; KC * NR];
    let mut ap = [T::ZERO; KC * MR];

    let mut jb = 0;
    while jb < n {
        let nr = NR.min(n - jb);
        let mut l0 = 0;
        while l0 < k {
            let kc = KC.min(k - l0);
            // Pack the B chunk `[l0, l0+kc) x [jb, jb+nr)`, l-major,
            // zero-padding the column remainder once per chunk.
            for l in 0..kc {
                let src = &b.row(l0 + l)[jb..jb + nr];
                let dst = &mut bp[l * NR..(l + 1) * NR];
                dst[..nr].copy_from_slice(src);
                for d in dst[nr..].iter_mut() {
                    *d = T::ZERO;
                }
            }
            let mut ib = 0;
            while ib < m {
                let mr = MR.min(m - ib);
                // Pack the A chunk `[ib, ib+mr) x [l0, l0+kc)`, l-major.
                for (r, arow) in (ib..ib + mr).map(|i| a.row(i)).enumerate() {
                    for (l, &v) in arow[l0..l0 + kc].iter().enumerate() {
                        ap[l * MR + r] = v;
                    }
                }
                if mr < MR {
                    for l in 0..kc {
                        for r in mr..MR {
                            ap[l * MR + r] = T::ZERO;
                        }
                    }
                }
                // Resume accumulation from the previous chunk's partial
                // sums: load, run the register kernel, store. The
                // load/store round-trip is exact, so the overall
                // reduction order per element is unchanged.
                let mut acc = [[T::ZERO; NR]; MR];
                for (r, row) in acc.iter_mut().enumerate().take(mr) {
                    if l0 > 0 {
                        let o = &out[(ib + r) * n + jb..(ib + r) * n + jb + nr];
                        row[..nr].copy_from_slice(o);
                    }
                }
                micro_kernel(kc, &ap[..kc * MR], &bp[..kc * NR], &mut acc);
                for (r, row) in acc.iter().enumerate().take(mr) {
                    let o = &mut out[(ib + r) * n + jb..(ib + r) * n + jb + nr];
                    o.copy_from_slice(&row[..nr]);
                }
                ib += MR;
            }
            l0 += KC;
        }
        jb += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{reference_gemm, Matrix64};
    use crate::noise::GaussianSampler;

    #[test]
    fn tiled_matches_reference_across_edge_shapes() {
        let mut rng = GaussianSampler::new(7);
        let shapes = [
            (0, 0, 0),
            (0, 3, 5),
            (3, 0, 5),
            (3, 5, 0),
            (1, 1, 1),
            (1, 300, 1),
            (MR, NR, KC),
            (MR + 1, NR + 3, KC + 5),
            (17, 9, 33),
            (65, 300, 7),
        ];
        for &(m, k, n) in &shapes {
            let a = Matrix64::randn(m, k, 1.0, &mut rng);
            let b = Matrix64::randn(k, n, 1.0, &mut rng);
            let got = tiled_gemm(&a.view(), &b.view());
            let want = reference_gemm(&a.view(), &b.view());
            assert_eq!(got, want, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn strided_operands_supported() {
        let mut rng = GaussianSampler::new(11);
        let m = Matrix64::randn(20, 20, 1.0, &mut rng);
        let a = m.view().block(1, 2, 9, 13);
        let b = m.view().block(3, 1, 13, 11);
        assert_eq!(
            tiled_gemm(&a, &b),
            reference_gemm(&a.to_matrix().view(), &b.to_matrix().view())
        );
    }
}
