//! Deterministic Gaussian noise source.
//!
//! Analog optical computing is subject to encoding magnitude noise, phase
//! drift, and systematic detection noise (paper Section III-C). All of the
//! stochastic models in this workspace draw from this sampler so that every
//! experiment is reproducible from an explicit seed, regardless of which
//! `rand` version is linked elsewhere.
//!
//! The generator is `xoshiro256**` seeded through SplitMix64 (the reference
//! construction from Blackman & Vigna), with Gaussians produced by the
//! 128-layer ziggurat of Marsaglia & Tsang — in the common case one raw
//! 64-bit draw and two table lookups per sample, no transcendentals.
//! (The noisy photonic models draw several Gaussians per MAC, so the
//! sampler is on the workspace's hottest path; the earlier Box-Muller
//! implementation spent an `ln`/`sqrt`/`sin`/`cos` per pair and dominated
//! recorded-forward wall-clock.)

use std::sync::OnceLock;

/// Number of ziggurat layers.
const ZIG_LAYERS: usize = 128;
/// Rightmost layer edge for 128 layers (Marsaglia & Tsang 2000).
const ZIG_R: f64 = 3.442_619_855_899;
/// Common layer area for 128 layers.
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

/// Precomputed layer edges `x[i]` (decreasing, `x[0]` is the virtual
/// base-strip width, `x[1] == ZIG_R`, `x[128] ~= 0`) and the density at
/// each edge `f[i] = exp(-x[i]^2 / 2)`.
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0f64; ZIG_LAYERS + 1];
        // The base strip's width is inflated so its area (including the
        // unbounded tail beyond ZIG_R) equals the common layer area.
        x[0] = ZIG_V / pdf(ZIG_R);
        x[1] = ZIG_R;
        for i in 1..ZIG_LAYERS - 1 {
            // Each layer adds V / x[i] of height; invert the density.
            let y = pdf(x[i]) + ZIG_V / x[i];
            x[i + 1] = (-2.0 * y.ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        let mut f = [0.0f64; ZIG_LAYERS + 1];
        for i in 0..=ZIG_LAYERS {
            f[i] = pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

/// A seedable pseudo-random source of uniform and Gaussian samples.
///
/// ```
/// use lt_core::noise::GaussianSampler;
/// let mut a = GaussianSampler::new(42);
/// let mut b = GaussianSampler::new(42);
/// assert_eq!(a.sample(), b.sample(), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    state: [u64; 4],
}

impl GaussianSampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        GaussianSampler {
            state: [next(), next(), next(), next()],
        }
    }

    /// Returns the next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double. The intermediate
        // `i64` cast is value-preserving (the shifted value fits in 53
        // bits) and matters: the baseline x86-64 target has no unsigned
        // integer-to-double instruction, so a `u64 as f64` costs a
        // multi-uop compensation sequence on this hot path while
        // `i64 as f64` is a single `cvtsi2sd`.
        ((self.next_u64() >> 11) as i64) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below zero");
        // Modulo bias is negligible for the small n used here, but use
        // multiply-shift for a cleaner distribution anyway.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Returns a standard-normal sample (mean 0, variance 1).
    pub fn sample(&mut self) -> f64 {
        let t = zig_tables();
        loop {
            // One raw draw supplies the layer index (7 bits), the sign
            // (1 bit), and the in-layer position (53 bits). As in
            // `uniform`, the signed intermediate cast keeps the
            // conversion a single instruction; on the common accept
            // path the sign is applied by flipping the IEEE sign bit —
            // bit-identical to multiplying the non-negative `x` by
            // ±1.0 (including the `-0.0` it produces when `u == 0`),
            // without a multiply on the latency chain.
            let bits = self.next_u64();
            let i = (bits & (ZIG_LAYERS as u64 - 1)) as usize;
            let neg = u64::from(bits & ZIG_LAYERS as u64 == 0) << 63;
            let u = ((bits >> 11) as i64) as f64 * (1.0 / (1u64 << 53) as f64);
            let x = u * t.x[i];
            if x < t.x[i + 1] {
                return f64::from_bits(x.to_bits() ^ neg); // rectangle: accept
            }
            let sign = if neg == 0 { 1.0 } else { -1.0 };
            if i == 0 {
                // Base strip beyond ZIG_R: sample the tail (Marsaglia).
                loop {
                    let ex = -self.uniform_nonzero().ln() / ZIG_R;
                    let ey = -self.uniform_nonzero().ln();
                    if ey + ey > ex * ex {
                        return sign * (ZIG_R + ex);
                    }
                }
            }
            // Wedge between x[i+1] and x[i]: accept under the density.
            if t.f[i] + self.uniform() * (t.f[i + 1] - t.f[i]) < (-0.5 * x * x).exp() {
                return sign * x;
            }
        }
    }

    /// A uniform sample in `(0, 1)` — never exactly zero, so logarithms
    /// of it are finite.
    fn uniform_nonzero(&mut self) -> f64 {
        loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                return u;
            }
        }
    }

    /// Returns a Gaussian sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample()
    }

    /// Fills `out` with standard-normal samples.
    pub fn fill_normal(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.sample();
        }
    }

    /// Derives an independent child sampler. Useful for giving each
    /// simulated component its own stream while staying reproducible.
    pub fn fork(&mut self) -> GaussianSampler {
        GaussianSampler::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = GaussianSampler::new(7);
        let mut b = GaussianSampler::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianSampler::new(1);
        let mut b = GaussianSampler::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut g = GaussianSampler::new(3);
        for _ in 0..10_000 {
            let u = g.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut g = GaussianSampler::new(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = g.sample();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn gaussian_tail_fractions() {
        // Catches ziggurat layer/wedge/tail mistakes that the first two
        // moments alone would miss: the mass beyond 1, 2, and 3 sigma
        // (two-sided) must match the normal CDF, including mass past
        // the rightmost layer edge ZIG_R = 3.44.
        let mut g = GaussianSampler::new(29);
        let n = 400_000;
        let (mut p1, mut p2, mut p3, mut pr) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..n {
            let x = g.sample().abs();
            p1 += u32::from(x > 1.0);
            p2 += u32::from(x > 2.0);
            p3 += u32::from(x > 3.0);
            pr += u32::from(x > ZIG_R);
        }
        let frac = |c: u32| c as f64 / n as f64;
        assert!((frac(p1) - 0.3173).abs() < 0.005, "P(|x|>1) {}", frac(p1));
        assert!((frac(p2) - 0.0455).abs() < 0.002, "P(|x|>2) {}", frac(p2));
        assert!((frac(p3) - 0.0027).abs() < 0.001, "P(|x|>3) {}", frac(p3));
        // ~5.8e-4 of the mass lies beyond the last layer edge; the tail
        // sampler must produce it (zero here means the tail is dead).
        assert!(pr > 0, "no samples beyond ZIG_R");
        assert!(frac(pr) < 2e-3, "P(|x|>R) {}", frac(pr));
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut g = GaussianSampler::new(13);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += g.normal(5.0, 0.5);
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.02);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut g = GaussianSampler::new(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[g.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut g = GaussianSampler::new(19);
        let mut child = g.fork();
        // Child stream should not replay the parent stream.
        let parent: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        let kid: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(parent, kid);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn uniform_in_rejects_empty_interval() {
        GaussianSampler::new(0).uniform_in(1.0, 1.0);
    }
}
