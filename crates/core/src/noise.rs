//! Deterministic Gaussian noise source.
//!
//! Analog optical computing is subject to encoding magnitude noise, phase
//! drift, and systematic detection noise (paper Section III-C). All of the
//! stochastic models in this workspace draw from this sampler so that every
//! experiment is reproducible from an explicit seed, regardless of which
//! `rand` version is linked elsewhere.
//!
//! The generator is `xoshiro256**` seeded through SplitMix64 (the reference
//! construction from Blackman & Vigna), with Gaussians produced by the
//! Box-Muller transform.

/// A seedable pseudo-random source of uniform and Gaussian samples.
///
/// ```
/// use lt_core::noise::GaussianSampler;
/// let mut a = GaussianSampler::new(42);
/// let mut b = GaussianSampler::new(42);
/// assert_eq!(a.sample(), b.sample(), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    state: [u64; 4],
    /// Cached second output of the Box-Muller pair.
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        GaussianSampler {
            state: [next(), next(), next(), next()],
            spare: None,
        }
    }

    /// Returns the next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below zero");
        // Modulo bias is negligible for the small n used here, but use
        // multiply-shift for a cleaner distribution anyway.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Returns a standard-normal sample (mean 0, variance 1).
    pub fn sample(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box-Muller with rejection of u == 0.
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a Gaussian sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample()
    }

    /// Fills `out` with standard-normal samples.
    pub fn fill_normal(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.sample();
        }
    }

    /// Derives an independent child sampler. Useful for giving each
    /// simulated component its own stream while staying reproducible.
    pub fn fork(&mut self) -> GaussianSampler {
        GaussianSampler::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = GaussianSampler::new(7);
        let mut b = GaussianSampler::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianSampler::new(1);
        let mut b = GaussianSampler::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut g = GaussianSampler::new(3);
        for _ in 0..10_000 {
            let u = g.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut g = GaussianSampler::new(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = g.sample();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut g = GaussianSampler::new(13);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += g.normal(5.0, 0.5);
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.02);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut g = GaussianSampler::new(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[g.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut g = GaussianSampler::new(19);
        let mut child = g.fork();
        // Child stream should not replay the parent stream.
        let parent: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        let kid: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(parent, kid);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn uniform_in_rejects_empty_interval() {
        GaussianSampler::new(0).uniform_in(1.0, 1.0);
    }
}
