//! A single flat, contiguous, row-major matrix type shared by the whole
//! compute stack.
//!
//! The workspace previously carried two incompatible representations —
//! ragged `Vec<Vec<f64>>` in the photonic simulators and a flat `f32`
//! tensor in the NN stack. [`Matrix`] replaces both: one contiguous
//! buffer, generic over the scalar ([`Matrix64`] for device physics,
//! [`Matrix32`] for NN workloads), with borrow-based [`MatrixView`]s for
//! zero-copy slicing and a cache-friendly tiled matmul kernel.

use crate::noise::GaussianSampler;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar element types a [`Matrix`] can hold (`f32` and `f64`).
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

/// A dense 2-D matrix with flat, contiguous, row-major storage.
///
/// ```
/// use lt_core::Matrix;
/// let t = Matrix::<f32>::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// assert_eq!(t.get(1, 2), 5.0);
/// assert_eq!(t.transpose().get(2, 1), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// Double-precision matrix — the compute-backend interchange type.
pub type Matrix64 = Matrix<f64>;
/// Single-precision matrix — the NN stack's tensor type.
pub type Matrix32 = Matrix<f32>;

impl<T: Scalar> Matrix<T> {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a generator function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Gaussian-initialized matrix (mean 0, the given std), deterministic
    /// per seed source.
    pub fn randn(rows: usize, cols: usize, std: T, rng: &mut GaussianSampler) -> Self {
        Matrix::from_fn(rows, cols, |_, _| T::from_f64(rng.sample()) * std)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Reshapes in place to `rows x cols` with every element zeroed,
    /// reusing the existing allocation whenever capacity allows. A
    /// scratch matrix cycled through a run's shapes stops allocating
    /// once it has seen the largest one — the reuse primitive behind
    /// [`MatrixView::matmul_into`].
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, T::ZERO);
    }

    /// A borrowed view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_, T> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            data: &self.data,
        }
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j] = v;
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends the rows of `other` in place (amortized O(rows of
    /// `other`), no rebuild of the existing buffer) — the growth
    /// operation of a KV cache appending one token per decode step.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    pub fn extend_rows(&mut self, other: &Matrix<T>) {
        assert_eq!(self.cols, other.cols, "extend_rows width mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Drops every row past `rows` in place (no-op when the matrix is
    /// already that short) — the inverse of [`Matrix::extend_rows`],
    /// used by KV-cache rollback to discard rejected speculative tokens.
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows < self.rows {
            self.data.truncate(rows * self.cols);
            self.rows = rows;
        }
    }

    /// Matrix product `self x rhs` through the shared tiled kernel.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.view().matmul(&rhs.view())
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Element-wise sum with another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix<T>) {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Adds a row vector to every row (broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.cols() != self.cols()` or `bias.rows() != 1`.
    pub fn add_row_broadcast(&self, bias: &Matrix<T>) -> Matrix<T> {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), self.cols, "bias width mismatch");
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j) + bias.get(0, j))
    }

    /// Scales every element.
    pub fn scale(&self, s: T) -> Matrix<T> {
        let data = self.data.iter().map(|&v| v * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies a function element-wise.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Matrix<T> {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Sums each column into a `1 x cols` row vector.
    pub fn col_sum(&self) -> Matrix<T> {
        let mut out = vec![T::ZERO; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Matrix::from_vec(1, self.cols, out)
    }

    /// Extracts a contiguous block of columns `[start, start + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix width.
    pub fn col_slice(&self, start: usize, width: usize) -> Matrix<T> {
        assert!(start + width <= self.cols, "column slice out of bounds");
        Matrix::from_fn(self.rows, width, |i, j| self.get(i, start + j))
    }

    /// Writes a block into the given column offset.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_col_slice(&mut self, start: usize, block: &Matrix<T>) {
        assert_eq!(block.rows(), self.rows, "row count mismatch");
        assert!(
            start + block.cols() <= self.cols,
            "column slice out of bounds"
        );
        for i in 0..block.rows() {
            for j in 0..block.cols() {
                self.set(i, start + j, block.get(i, j));
            }
        }
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |m, v| if v.abs() > m { v.abs() } else { m })
    }

    /// Largest absolute difference from another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix<T>) -> T {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(T::ZERO, |m, (&a, &b)| {
                let d = (a - b).abs();
                if d > m {
                    d
                } else {
                    m
                }
            })
    }

    /// Mean of all elements.
    pub fn mean(&self) -> T {
        if self.data.is_empty() {
            return T::ZERO;
        }
        let sum = self.data.iter().fold(T::ZERO, |acc, &v| acc + v);
        T::from_f64(sum.to_f64() / self.data.len() as f64)
    }
}

impl Matrix<f32> {
    /// Widens to a double-precision matrix (for the f64 compute backends).
    pub fn to_f64(&self) -> Matrix64 {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v as f64).collect(),
        }
    }

    /// As [`Matrix::<f32>::to_f64`], but widens into a caller-provided
    /// matrix (reshaped in place, allocation reused) — the staging step
    /// of an f32 frontend driving the f64 backends without a fresh
    /// buffer per call.
    pub fn to_f64_into(&self, out: &mut Matrix64) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend(self.data.iter().map(|&v| v as f64));
    }
}

impl Matrix<f64> {
    /// Narrows to a single-precision matrix (back to the NN stack).
    pub fn to_f32(&self) -> Matrix32 {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v as f32).collect(),
        }
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>8.4} ", self.get(i, j).to_f64())?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        write!(f, "{}]", if self.rows > 6 { "  ...\n" } else { "" })
    }
}

/// A borrowed, possibly strided view of a [`Matrix`] block.
///
/// Views are `Copy` and cost nothing to take; the compute backends accept
/// views so callers can hand in whole matrices or sub-blocks without
/// copies.
///
/// ```
/// use lt_core::Matrix64;
/// let m = Matrix64::from_fn(4, 6, |i, j| (i * 6 + j) as f64);
/// let block = m.view().block(1, 2, 2, 3);
/// assert_eq!(block.shape(), (2, 3));
/// assert_eq!(block.get(0, 0), m.get(1, 2));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a, T> {
    rows: usize,
    cols: usize,
    stride: usize,
    data: &'a [T],
}

impl<'a, T: Scalar> MatrixView<'a, T> {
    /// Wraps a flat row-major slice as a view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &'a [T]) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        MatrixView {
            rows,
            cols,
            stride: cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.stride + j]
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &'a [T] {
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// A sub-block view `[r0, r0 + nrows) x [c0, c0 + ncols)` sharing the
    /// same storage.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the view bounds.
    pub fn block(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> MatrixView<'a, T> {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "block [{r0}+{nrows}, {c0}+{ncols}] exceeds a {}x{} view",
            self.rows,
            self.cols
        );
        let start = r0 * self.stride + c0;
        let end = if nrows == 0 || ncols == 0 {
            start
        } else {
            start + (nrows - 1) * self.stride + ncols
        };
        MatrixView {
            rows: nrows,
            cols: ncols,
            stride: self.stride,
            data: &self.data[start..end],
        }
    }

    /// Copies the viewed block into an owned matrix.
    pub fn to_matrix(&self) -> Matrix<T> {
        if self.stride == self.cols {
            return Matrix::from_vec(self.rows, self.cols, self.data.to_vec());
        }
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Matrix product through the shared kernel: `self x rhs`.
    ///
    /// Delegates to the register-blocked, cache-tiled micro-kernel in
    /// [`crate::kernel`], which is bit-identical to [`reference_gemm`]
    /// on every shape. All backends that advertise exact arithmetic
    /// route through this one kernel so "exact" is bit-for-bit
    /// reproducible across the workspace.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &MatrixView<'_, T>) -> Matrix<T> {
        crate::kernel::tiled_gemm(self, rhs)
    }

    /// As [`MatrixView::matmul`], but writes the product into a
    /// caller-provided matrix (reshaped in place via
    /// [`Matrix::reset_zeroed`], allocation reused), bit-identical to
    /// `matmul` — see [`crate::kernel::tiled_gemm_into`].
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, rhs: &MatrixView<'_, T>, out: &mut Matrix<T>) {
        crate::kernel::tiled_gemm_into(self, rhs, out);
    }
}

/// Naive triple-loop reference GEMM, kept deliberately simple for
/// property tests to compare optimized kernels and backends against.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn reference_gemm<T: Scalar>(a: &MatrixView<'_, T>, b: &MatrixView<'_, T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "reference_gemm shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = T::ZERO;
        for l in 0..k {
            acc += a.get(i, l) * b.get(l, j);
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_reference() {
        let a = Matrix64::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix64::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        let r = reference_gemm(&a.view(), &b.view());
        assert_eq!(c, r);
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = GaussianSampler::new(1);
        let t = Matrix32::randn(5, 7, 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn extend_rows_appends_in_place() {
        let mut m = Matrix32::zeros(0, 3);
        m.extend_rows(&Matrix32::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        m.extend_rows(&Matrix32::from_vec(
            2,
            3,
            vec![4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        ));
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "extend_rows width mismatch")]
    fn extend_rows_rejects_width_mismatch() {
        Matrix32::zeros(1, 3).extend_rows(&Matrix32::zeros(1, 4));
    }

    #[test]
    fn truncate_rows_inverts_extend_rows() {
        let mut m = Matrix32::from_fn(5, 3, |i, j| (i * 3 + j) as f32);
        let kept = Matrix32::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        m.truncate_rows(2);
        assert_eq!(m, kept);
        m.truncate_rows(4); // longer than current: no-op
        assert_eq!(m, kept);
        m.truncate_rows(0);
        assert_eq!(m.shape(), (0, 3));
    }

    #[test]
    fn views_slice_without_copying() {
        let m = Matrix64::from_fn(6, 8, |i, j| (i * 8 + j) as f64);
        let v = m.view();
        let b = v.block(2, 3, 3, 4);
        assert_eq!(b.shape(), (3, 4));
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(b.get(i, j), m.get(2 + i, 3 + j));
            }
        }
        // A block of a block still lands on the right elements.
        let bb = b.block(1, 1, 2, 2);
        assert_eq!(bb.get(0, 0), m.get(3, 4));
        assert_eq!(bb.to_matrix().get(1, 1), m.get(4, 5));
    }

    #[test]
    fn strided_view_matmul_matches_owned() {
        let m = Matrix64::from_fn(6, 6, |i, j| ((i * 6 + j) as f64 * 0.1).sin());
        let a = m.view().block(1, 1, 3, 4);
        let b = m.view().block(0, 2, 4, 3);
        let got = a.matmul(&b);
        let want = a.to_matrix().matmul(&b.to_matrix());
        assert_eq!(got, want);
    }

    #[test]
    fn broadcast_and_elementwise() {
        let x = Matrix32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix32::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.hadamard(&x).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(x.col_sum().data(), &[4.0, 6.0]);
        assert_eq!(x.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn col_slice_round_trip() {
        let x = Matrix32::from_fn(3, 8, |i, j| (i * 8 + j) as f32);
        let block = x.col_slice(2, 4);
        assert_eq!(block.shape(), (3, 4));
        assert_eq!(block.get(1, 0), 10.0);
        let mut y = Matrix32::zeros(3, 8);
        y.set_col_slice(2, &block);
        assert_eq!(y.get(2, 3), x.get(2, 3));
        assert_eq!(y.get(0, 0), 0.0);
    }

    #[test]
    fn stats_helpers() {
        let x = Matrix32::from_vec(1, 4, vec![-3.0, 1.0, 2.0, -0.5]);
        assert_eq!(x.max_abs(), 3.0);
        assert!((x.mean() + 0.125).abs() < 1e-7);
    }

    #[test]
    fn f32_f64_round_trip() {
        let mut rng = GaussianSampler::new(9);
        let x = Matrix32::randn(4, 5, 1.0, &mut rng);
        assert_eq!(x.to_f64().to_f32(), x);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn bad_matmul_rejected() {
        Matrix64::zeros(2, 3).matmul(&Matrix64::zeros(2, 3));
    }
}
