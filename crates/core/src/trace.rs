//! The op-trace IR: a hardware-agnostic record of what a workload
//! actually executed.
//!
//! The paper evaluates the accelerator by running transformer GEMM
//! traces through its architectural model (Table V, Figs. 11-13). In
//! this workspace the trace is a first-class value: an [`Op`] is one
//! operation (a GEMM with its dimensions and instance count, or a
//! non-GEMM digital op with its element count), a [`Trace`] is a
//! sequence of them, and a [`TraceRecorder`] is a shared sink that
//! execution layers append to *while actually computing*.
//!
//! Two producers speak this IR:
//!
//! * **recorded traces** — `lt-nn` forward passes append every routed
//!   matmul (with its [`OpKind`] role) and every softmax / LayerNorm /
//!   GELU / residual to the recorder attached to their forward context,
//!   so the trace is a faithful side effect of real execution;
//! * **analytical traces** — `lt_workloads::TransformerConfig` derives
//!   the same IR from model hyper-parameters alone.
//!
//! One consumer replays them: `lt_arch::Simulator::run_trace` costs an
//! arbitrary `Trace` in cycles, itemized energy, latency, and EDP. The
//! recorded-vs-analytical agreement is pinned by
//! `tests/trace_crossval.rs`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// What role a GEMM plays inside the Transformer.
///
/// The role determines two things the hardware model cares about:
/// whether an operand is a fixed weight ([`OpKind::dynamics`] — the
/// distinction at the heart of the paper, Section II-C) and which
/// module the cost is attributed to ([`OpKind::module`], Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Patch embedding (vision models): flattened patches times projection.
    PatchEmbed,
    /// Q/K/V linear projections.
    QkvProj,
    /// The attention score product `Q K^T` — both operands dynamic.
    AttnQk,
    /// The attention aggregation `A V` — both operands dynamic.
    AttnAv,
    /// The attention output projection.
    OutProj,
    /// First FFN linear (expansion).
    Ffn1,
    /// Second FFN linear (contraction).
    Ffn2,
    /// The classification head.
    Classifier,
    /// The autoregressive language-model head (hidden state times the
    /// vocabulary projection — the per-token matrix-vector product of
    /// decode, paper Section VI-B).
    LmHead,
    /// Any other product (untagged matmuls record as this; treated as
    /// weight-static, attributed to [`Module::Other`]).
    Other,
}

impl OpKind {
    /// Whether both operands are runtime activations (see
    /// [`OperandDynamics`]).
    pub fn dynamics(&self) -> OperandDynamics {
        match self {
            OpKind::AttnQk | OpKind::AttnAv => OperandDynamics::BothDynamic,
            _ => OperandDynamics::WeightStatic,
        }
    }

    /// Module attribution per the paper's Table V.
    pub fn module(&self) -> Module {
        match self {
            OpKind::AttnQk | OpKind::AttnAv => Module::Mha,
            OpKind::Ffn1 | OpKind::Ffn2 => Module::Ffn,
            _ => Module::Other,
        }
    }
}

/// Whether both GEMM operands are runtime activations or one is a fixed
/// weight matrix — the distinction at the heart of the paper (Section II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandDynamics {
    /// One operand is a learned weight: weight-static PTCs can amortize its
    /// mapping cost across inputs.
    WeightStatic,
    /// Both operands are activations generated at runtime: weight-static
    /// PTCs must remap/reprogram per tile, which the paper shows is
    /// unaffordable.
    BothDynamic,
}

/// The module attribution used by the paper's Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Module {
    /// Multi-head attention — only the dynamic products `Q K^T` and `A V`.
    Mha,
    /// The feed-forward network linears.
    Ffn,
    /// Everything else (projections, embeddings, classifier, digital ops).
    Other,
}

/// A non-GEMM operation executed on the digital units (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NonGemmKind {
    /// Row-wise softmax over attention scores.
    Softmax,
    /// Layer normalization.
    LayerNorm,
    /// GELU activation.
    Gelu,
    /// Residual (shortcut) addition.
    Residual,
    /// Appending one token's K/V rows to the KV cache (autoregressive
    /// decode, paper Section VI-B) — pure memory traffic on the digital
    /// side, counted in elements written.
    KvAppend,
    /// Reading cached K/V rows back for decode attention (and
    /// block-granular copies of a paged KV cache, e.g. copy-on-write):
    /// pure memory traffic, counted in elements read. Together with
    /// [`NonGemmKind::KvAppend`] this makes the KV cache's growing
    /// context visible to the hardware model as scheduled HBM traffic.
    KvRead,
}

/// One operation of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// `instances` independent executions of a `[m, k] x [k, n]` GEMM
    /// (e.g. the per-head attention products, or one linear repeated
    /// across layers). Independent instances matter to the hardware
    /// model: they fill tiles a single small product would leave idle.
    Gemm {
        /// Operation role.
        kind: OpKind,
        /// Rows of the left operand.
        m: usize,
        /// Shared (inner) dimension.
        k: usize,
        /// Columns of the right operand.
        n: usize,
        /// Number of independent executions.
        instances: usize,
    },
    /// A digital op over `elems` elements.
    NonGemm {
        /// Which digital unit runs it.
        kind: NonGemmKind,
        /// Elements processed.
        elems: u64,
    },
}

impl Op {
    /// A single-instance GEMM.
    pub fn gemm(kind: OpKind, m: usize, k: usize, n: usize) -> Self {
        Op::gemm_n(kind, m, k, n, 1)
    }

    /// A GEMM with an explicit instance count.
    pub fn gemm_n(kind: OpKind, m: usize, k: usize, n: usize, instances: usize) -> Self {
        Op::Gemm {
            kind,
            m,
            k,
            n,
            instances,
        }
    }

    /// A non-GEMM digital op.
    pub fn non_gemm(kind: NonGemmKind, elems: u64) -> Self {
        Op::NonGemm { kind, elems }
    }

    /// MACs of a single GEMM instance (0 for non-GEMM ops).
    pub fn macs(&self) -> u64 {
        match *self {
            Op::Gemm { m, k, n, .. } => (m as u64) * (k as u64) * (n as u64),
            Op::NonGemm { .. } => 0,
        }
    }

    /// MACs across all instances (0 for non-GEMM ops).
    pub fn total_macs(&self) -> u64 {
        match *self {
            Op::Gemm { instances, .. } => self.macs() * instances as u64,
            Op::NonGemm { .. } => 0,
        }
    }

    /// Weight-matrix elements this op must stage from off-chip memory,
    /// across all instances: `k * n` per instance for weight-static
    /// GEMMs (each instance is a distinct weight matrix — e.g. one per
    /// layer), zero for dynamic products and non-GEMM work, whose
    /// operands are runtime activations already on chip. This is the
    /// quantity the hardware model turns into HBM traffic; a tile
    /// scheduler further multiplies it by a dataflow-dependent refetch
    /// factor when the reuse window exceeds on-chip SRAM.
    pub fn weight_elems(&self) -> u64 {
        match *self {
            Op::Gemm {
                kind,
                k,
                n,
                instances,
                ..
            } if kind.dynamics() == OperandDynamics::WeightStatic => {
                (k as u64) * (n as u64) * instances as u64
            }
            _ => 0,
        }
    }

    /// Operand dynamics (GEMMs only).
    pub fn dynamics(&self) -> Option<OperandDynamics> {
        match self {
            Op::Gemm { kind, .. } => Some(kind.dynamics()),
            Op::NonGemm { .. } => None,
        }
    }

    /// Module attribution (non-GEMM work is digital, hence
    /// [`Module::Other`], matching the paper's Table V accounting).
    pub fn module(&self) -> Module {
        match self {
            Op::Gemm { kind, .. } => kind.module(),
            Op::NonGemm { .. } => Module::Other,
        }
    }
}

/// An ordered sequence of [`Op`]s — the unit the simulator replays.
///
/// ```
/// use lt_core::trace::{NonGemmKind, Op, OpKind, Trace};
/// let mut t = Trace::new();
/// t.push(Op::gemm(OpKind::AttnQk, 17, 2, 17));
/// t.push(Op::gemm(OpKind::AttnQk, 17, 2, 17));
/// t.push(Op::non_gemm(NonGemmKind::Softmax, 17 * 17));
/// assert_eq!(t.total_macs(), 2 * 17 * 2 * 17);
/// // Coalescing merges identical GEMMs into one multi-instance op.
/// let c = t.coalesce();
/// assert_eq!(c.ops(), &[
///     Op::gemm_n(OpKind::AttnQk, 17, 2, 17, 2),
///     Op::non_gemm(NonGemmKind::Softmax, 17 * 17),
/// ]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps an op list.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Trace { ops }
    }

    /// Appends one op.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends many ops.
    pub fn extend(&mut self, ops: impl IntoIterator<Item = Op>) {
        self.ops.extend(ops);
    }

    /// The recorded ops, in order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total multiply-accumulate count over all GEMM ops.
    pub fn total_macs(&self) -> u64 {
        self.ops.iter().map(Op::total_macs).sum()
    }

    /// Total weight elements staged from off-chip memory over the whole
    /// trace (see [`Op::weight_elems`]) — the denominator of the
    /// trace's arithmetic intensity (`lt_arch::roofline::analyze_trace`
    /// consumes it).
    pub fn weight_elems(&self) -> u64 {
        self.ops.iter().map(Op::weight_elems).sum()
    }

    /// Only the GEMM ops, preserving order.
    pub fn gemm_only(&self) -> Trace {
        Trace {
            ops: self
                .ops
                .iter()
                .filter(|op| matches!(op, Op::Gemm { .. }))
                .copied()
                .collect(),
        }
    }

    /// The canonical coalesced form: GEMMs with identical
    /// `(kind, m, k, n)` merge into one op with summed `instances`;
    /// non-GEMM ops of the same kind merge with summed `elems`; ops are
    /// sorted by their IR ordering. Two traces describe the same batched
    /// workload iff their coalesced forms are equal — that is the form
    /// the cross-validation tests compare and the serving layer costs
    /// (merged instances fill hardware tiles exactly like the analytical
    /// per-head counts do).
    pub fn coalesce(&self) -> Trace {
        use std::collections::BTreeMap;
        let mut gemms: BTreeMap<(OpKind, usize, usize, usize), usize> = BTreeMap::new();
        let mut digital: BTreeMap<NonGemmKind, u64> = BTreeMap::new();
        for op in &self.ops {
            match *op {
                Op::Gemm {
                    kind,
                    m,
                    k,
                    n,
                    instances,
                } => *gemms.entry((kind, m, k, n)).or_insert(0) += instances,
                Op::NonGemm { kind, elems } => *digital.entry(kind).or_insert(0) += elems,
            }
        }
        let mut ops: Vec<Op> = gemms
            .into_iter()
            .map(|((kind, m, k, n), instances)| Op::gemm_n(kind, m, k, n, instances))
            .collect();
        ops.extend(
            digital
                .into_iter()
                .map(|(kind, elems)| Op::non_gemm(kind, elems)),
        );
        Trace { ops }
    }

    /// Merges per-sequence traces into their *batched* form: GEMMs
    /// identical in `(kind, k, n, instances)` stack their rows (`m`
    /// sums), and non-GEMM ops of one kind merge with summed `elems`.
    ///
    /// This is the decode-batching transform of paper Section VI-B: `b`
    /// concurrent sequences each executing a `[1, k] x [k, n]`
    /// matrix-vector product become one `[b, k] x [k, n]` GEMM — the
    /// weight matrix is loaded once for the whole batch (vs. once per
    /// sequence when the products are costed as independent instances),
    /// and the `b` rows fill hardware tile rows a single token would
    /// leave idle. It is a *cost-model* merge: for dynamic ops (each
    /// sequence attending its own KV cache) the stacked operands differ
    /// per row, but the tile mapping — and therefore the cost — is that
    /// of the analytical `DecodeTrace` batched shapes. Ops that differ
    /// in any of kind, `k`, `n`, or instance count (e.g. attention at
    /// different context lengths) stay separate.
    ///
    /// ```
    /// use lt_core::trace::{Op, OpKind, Trace};
    /// let per_seq = Trace::from_ops(vec![Op::gemm_n(OpKind::QkvProj, 1, 8, 8, 6)]);
    /// let batched = Trace::batch_rows([&per_seq, &per_seq.clone(), &per_seq.clone()]);
    /// assert_eq!(batched.ops(), &[Op::gemm_n(OpKind::QkvProj, 3, 8, 8, 6)]);
    /// ```
    pub fn batch_rows<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Trace {
        use std::collections::BTreeMap;
        let mut gemms: BTreeMap<(OpKind, usize, usize, usize), usize> = BTreeMap::new();
        let mut digital: BTreeMap<NonGemmKind, u64> = BTreeMap::new();
        for trace in traces {
            for op in &trace.ops {
                match *op {
                    Op::Gemm {
                        kind,
                        m,
                        k,
                        n,
                        instances,
                    } => *gemms.entry((kind, k, n, instances)).or_insert(0) += m,
                    Op::NonGemm { kind, elems } => *digital.entry(kind).or_insert(0) += elems,
                }
            }
        }
        let mut ops: Vec<Op> = gemms
            .into_iter()
            .map(|((kind, k, n, instances), m)| Op::gemm_n(kind, m, k, n, instances))
            .collect();
        ops.extend(
            digital
                .into_iter()
                .map(|(kind, elems)| Op::non_gemm(kind, elems)),
        );
        Trace { ops }
    }

    /// [`Trace::batch_rows`] with *ragged* attention support: dynamic
    /// attention products ([`OperandDynamics::BothDynamic`]) at
    /// different context lengths also merge, padding every row group to
    /// the longest context in the batch.
    ///
    /// This is the merge the speculative-verify tick needs: concurrent
    /// sessions verify `k+1`-row blocks against KV caches of different
    /// lengths, so their `Q K^T` ops are `[r, dh] x [dh, ctx_i]` with
    /// mixed `ctx_i` (and `A V` is `[r, ctx_i] x [ctx_i, dh]`). The
    /// physical batched GEMM runs all rows against the longest context
    /// with shorter rows causally masked, so the merged op charges
    /// `ctx_max` for every row — padding MACs are *charged*, not hidden,
    /// which is why this is a separate opt-in and `batch_rows` keeps
    /// mixed-context ops apart. Weight-static ops and non-GEMM work
    /// merge exactly as in `batch_rows`; with uniform context lengths
    /// the two transforms coalesce identically.
    pub fn batch_rows_ragged<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Trace {
        use std::collections::BTreeMap;
        let mut gemms: BTreeMap<(OpKind, usize, usize, usize), usize> = BTreeMap::new();
        // (kind, head dim, instances) -> (summed rows, max context).
        let mut dynamic: BTreeMap<(OpKind, usize, usize), (usize, usize)> = BTreeMap::new();
        let mut digital: BTreeMap<NonGemmKind, u64> = BTreeMap::new();
        for trace in traces {
            for op in &trace.ops {
                match *op {
                    Op::Gemm {
                        kind,
                        m,
                        k,
                        n,
                        instances,
                    } if kind.dynamics() == OperandDynamics::BothDynamic => {
                        // The context-length dimension is `n` for
                        // `Q K^T` (`[m, dh] x [dh, ctx]`) and `k` for
                        // `A V` (`[m, ctx] x [ctx, dh]`).
                        let (head, ctx) = if kind == OpKind::AttnAv {
                            (n, k)
                        } else {
                            (k, n)
                        };
                        let slot = dynamic.entry((kind, head, instances)).or_insert((0, 0));
                        slot.0 += m;
                        slot.1 = slot.1.max(ctx);
                    }
                    Op::Gemm {
                        kind,
                        m,
                        k,
                        n,
                        instances,
                    } => *gemms.entry((kind, k, n, instances)).or_insert(0) += m,
                    Op::NonGemm { kind, elems } => *digital.entry(kind).or_insert(0) += elems,
                }
            }
        }
        let mut ops: Vec<Op> = gemms
            .into_iter()
            .map(|((kind, k, n, instances), m)| Op::gemm_n(kind, m, k, n, instances))
            .collect();
        ops.extend(
            dynamic
                .into_iter()
                .map(|((kind, head, instances), (m, ctx))| match kind {
                    OpKind::AttnAv => Op::gemm_n(kind, m, ctx, head, instances),
                    _ => Op::gemm_n(kind, m, head, ctx, instances),
                }),
        );
        ops.extend(
            digital
                .into_iter()
                .map(|(kind, elems)| Op::non_gemm(kind, elems)),
        );
        Trace { ops }
    }
}

/// One thread's private append buffer inside a [`TraceRecorder`]. The
/// mutex exists only for the merge in `snapshot`/`take`; the recording
/// thread is its sole other user, so `record` never blocks on another
/// recorder's traffic.
#[derive(Debug, Default)]
struct TraceShard {
    ops: Mutex<Vec<(u64, Op)>>,
}

#[derive(Debug)]
struct RecorderInner {
    /// Identity of this recorder in each thread's shard registry.
    id: u64,
    /// Every shard ever handed to a recording thread. Only pushed under
    /// this mutex; `record` never touches it after its thread's first
    /// op.
    shards: Mutex<Vec<Arc<TraceShard>>>,
    /// Global arrival order: each recorded op takes a ticket so the
    /// merged trace is the true interleaving, not a per-shard
    /// concatenation.
    seq: AtomicU64,
}

impl Default for RecorderInner {
    fn default() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        RecorderInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shards: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
        }
    }
}

thread_local! {
    /// This thread's shard per live recorder, keyed by recorder id.
    /// Weak so dropping the last recorder clone frees its shards; dead
    /// entries are pruned whenever a lookup walks past them.
    static SHARD_REGISTRY: RefCell<Vec<(u64, Weak<TraceShard>)>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable, thread-safe sink that execution layers record [`Op`]s
/// into. Clones share one buffer, so a recorder can be attached to a
/// context, kept by the caller, and drained after the forward pass:
///
/// ```
/// use lt_core::trace::{Op, OpKind, TraceRecorder};
/// let rec = TraceRecorder::new();
/// let handle = rec.clone(); // shares the same buffer
/// handle.record(Op::gemm(OpKind::Ffn1, 4, 8, 16));
/// let trace = rec.take();
/// assert_eq!(trace.len(), 1);
/// assert!(rec.take().is_empty(), "take drains the shared buffer");
/// ```
///
/// Recording is contention-free across threads: each recording thread
/// appends to its own private shard (one uncontended mutex per op plus
/// one atomic sequence ticket), instead of all threads serializing on a
/// single shared `Mutex<Trace>`. `snapshot`/`take` merge the shards in
/// global ticket order, so the returned trace is the deterministic
/// arrival-order interleaving — on a single thread, exactly the
/// recorded order, unchanged from the unsharded recorder.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Arc<RecorderInner>,
}

impl TraceRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// The calling thread's shard of this recorder, created and
    /// registered (both thread-locally and in the recorder's merge
    /// list) on first use.
    fn shard(&self) -> Arc<TraceShard> {
        SHARD_REGISTRY.with(|registry| {
            let mut registry = registry.borrow_mut();
            // Prune shards whose recorders are gone, find ours.
            let mut found = None;
            registry.retain(|(id, weak)| match weak.upgrade() {
                Some(shard) => {
                    if *id == self.inner.id {
                        found = Some(shard);
                    }
                    true
                }
                None => false,
            });
            found.unwrap_or_else(|| {
                let shard = Arc::new(TraceShard::default());
                self.inner
                    .shards
                    .lock()
                    .expect("trace recorder poisoned")
                    .push(Arc::clone(&shard));
                registry.push((self.inner.id, Arc::downgrade(&shard)));
                shard
            })
        })
    }

    /// Appends one op.
    pub fn record(&self, op: Op) {
        let shard = self.shard();
        let ticket = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        shard
            .ops
            .lock()
            .expect("trace recorder poisoned")
            .push((ticket, op));
    }

    /// Merges every shard in ticket order, draining them when `drain`.
    fn merge(&self, drain: bool) -> Trace {
        let shards = self.inner.shards.lock().expect("trace recorder poisoned");
        let mut stamped: Vec<(u64, Op)> = Vec::new();
        for shard in shards.iter() {
            let mut ops = shard.ops.lock().expect("trace recorder poisoned");
            if drain {
                stamped.append(&mut ops);
            } else {
                stamped.extend_from_slice(&ops);
            }
        }
        stamped.sort_unstable_by_key(|&(ticket, _)| ticket);
        Trace::from_ops(stamped.into_iter().map(|(_, op)| op).collect())
    }

    /// Copies the current contents without draining.
    pub fn snapshot(&self) -> Trace {
        self.merge(false)
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Trace {
        self.merge(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accounting() {
        let g = Op::gemm_n(OpKind::AttnQk, 197, 64, 197, 36);
        assert_eq!(g.macs(), 197 * 64 * 197);
        assert_eq!(g.total_macs(), 197 * 64 * 197 * 36);
        assert_eq!(g.dynamics(), Some(OperandDynamics::BothDynamic));
        assert_eq!(g.module(), Module::Mha);
        let d = Op::non_gemm(NonGemmKind::Gelu, 1000);
        assert_eq!(d.total_macs(), 0);
        assert_eq!(d.dynamics(), None);
        assert_eq!(d.module(), Module::Other);
    }

    #[test]
    fn kind_classification_matches_the_paper() {
        for kind in [
            OpKind::PatchEmbed,
            OpKind::QkvProj,
            OpKind::OutProj,
            OpKind::Ffn1,
            OpKind::Ffn2,
            OpKind::Classifier,
            OpKind::LmHead,
            OpKind::Other,
        ] {
            assert_eq!(kind.dynamics(), OperandDynamics::WeightStatic);
        }
        assert_eq!(OpKind::AttnQk.dynamics(), OperandDynamics::BothDynamic);
        assert_eq!(OpKind::AttnAv.module(), Module::Mha);
        assert_eq!(OpKind::Ffn1.module(), Module::Ffn);
        assert_eq!(OpKind::QkvProj.module(), Module::Other);
    }

    #[test]
    fn coalesce_merges_and_canonicalizes() {
        let mut a = Trace::new();
        a.push(Op::gemm(OpKind::AttnAv, 5, 5, 2));
        a.push(Op::gemm(OpKind::AttnQk, 5, 2, 5));
        a.push(Op::gemm(OpKind::AttnQk, 5, 2, 5));
        a.push(Op::non_gemm(NonGemmKind::Softmax, 25));
        a.push(Op::non_gemm(NonGemmKind::Softmax, 25));
        let mut b = Trace::new();
        b.push(Op::non_gemm(NonGemmKind::Softmax, 50));
        b.push(Op::gemm_n(OpKind::AttnQk, 5, 2, 5, 2));
        b.push(Op::gemm(OpKind::AttnAv, 5, 5, 2));
        assert_eq!(a.coalesce(), b.coalesce(), "order/merging is canonical");
        assert_eq!(a.coalesce().total_macs(), a.total_macs());
    }

    #[test]
    fn batch_rows_stacks_rows_and_preserves_macs() {
        let step = Trace::from_ops(vec![
            Op::gemm_n(OpKind::QkvProj, 1, 8, 8, 6),
            Op::gemm_n(OpKind::AttnQk, 1, 2, 5, 8),
            Op::non_gemm(NonGemmKind::KvAppend, 16),
        ]);
        let longer = Trace::from_ops(vec![
            Op::gemm_n(OpKind::QkvProj, 1, 8, 8, 6),
            Op::gemm_n(OpKind::AttnQk, 1, 2, 9, 8), // different context: stays separate
            Op::non_gemm(NonGemmKind::KvAppend, 16),
        ]);
        let batched = Trace::batch_rows([&step, &step.clone(), &longer]);
        assert!(batched
            .ops()
            .contains(&Op::gemm_n(OpKind::QkvProj, 3, 8, 8, 6)));
        assert!(batched
            .ops()
            .contains(&Op::gemm_n(OpKind::AttnQk, 2, 2, 5, 8)));
        assert!(batched
            .ops()
            .contains(&Op::gemm_n(OpKind::AttnQk, 1, 2, 9, 8)));
        assert!(batched
            .ops()
            .contains(&Op::non_gemm(NonGemmKind::KvAppend, 48)));
        let total: u64 = [&step, &step, &longer].iter().map(|t| t.total_macs()).sum();
        assert_eq!(batched.total_macs(), total, "batching moves no work");
    }

    #[test]
    fn ragged_batching_pads_mixed_contexts_to_the_longest() {
        // Two verify blocks against different KV lengths: Q K^T at
        // contexts 5 and 9, A V with the context on the inner dim.
        let short = Trace::from_ops(vec![
            Op::gemm_n(OpKind::QkvProj, 3, 8, 8, 6),
            Op::gemm_n(OpKind::AttnQk, 3, 2, 5, 8),
            Op::gemm_n(OpKind::AttnAv, 3, 5, 2, 8),
        ]);
        let long = Trace::from_ops(vec![
            Op::gemm_n(OpKind::QkvProj, 3, 8, 8, 6),
            Op::gemm_n(OpKind::AttnQk, 3, 2, 9, 8),
            Op::gemm_n(OpKind::AttnAv, 3, 9, 2, 8),
        ]);
        let ragged = Trace::batch_rows_ragged([&short, &long]);
        assert!(ragged
            .ops()
            .contains(&Op::gemm_n(OpKind::QkvProj, 6, 8, 8, 6)));
        assert!(
            ragged
                .ops()
                .contains(&Op::gemm_n(OpKind::AttnQk, 6, 2, 9, 8)),
            "mixed contexts merge to the longest: {:?}",
            ragged.ops()
        );
        assert!(ragged
            .ops()
            .contains(&Op::gemm_n(OpKind::AttnAv, 6, 9, 2, 8)));
        // Padding is charged: the merged MACs exceed the raw sum.
        let raw: u64 = [&short, &long].iter().map(|t| t.total_macs()).sum();
        assert!(ragged.total_macs() > raw, "padding MACs must be visible");
    }

    #[test]
    fn ragged_batching_equals_batch_rows_at_uniform_context() {
        let step = Trace::from_ops(vec![
            Op::gemm_n(OpKind::QkvProj, 1, 8, 8, 6),
            Op::gemm_n(OpKind::AttnQk, 1, 2, 5, 8),
            Op::gemm_n(OpKind::AttnAv, 1, 5, 2, 8),
            Op::non_gemm(NonGemmKind::KvAppend, 16),
        ]);
        let sessions = [&step, &step, &step];
        assert_eq!(
            Trace::batch_rows_ragged(sessions).coalesce(),
            Trace::batch_rows(sessions).coalesce(),
            "uniform contexts: ragged merge is exactly batch_rows"
        );
    }

    #[test]
    fn weight_elems_count_only_static_operands() {
        let qkv = Op::gemm_n(OpKind::QkvProj, 16, 8, 8, 36);
        assert_eq!(qkv.weight_elems(), 8 * 8 * 36);
        let qk = Op::gemm_n(OpKind::AttnQk, 16, 8, 16, 36);
        assert_eq!(qk.weight_elems(), 0, "dynamic operands live on chip");
        let digital = Op::non_gemm(NonGemmKind::Softmax, 99);
        assert_eq!(digital.weight_elems(), 0);
        let t = Trace::from_ops(vec![qkv, qk, digital]);
        assert_eq!(t.weight_elems(), 8 * 8 * 36);
    }

    #[test]
    fn gemm_only_strips_digital_ops() {
        let t = Trace::from_ops(vec![
            Op::gemm(OpKind::Ffn1, 2, 3, 4),
            Op::non_gemm(NonGemmKind::LayerNorm, 9),
        ]);
        assert_eq!(t.gemm_only().len(), 1);
        assert_eq!(t.gemm_only().total_macs(), t.total_macs());
    }

    #[test]
    fn recorder_preserves_single_thread_order_across_clones() {
        // Clones get distinct per-thread shards only on distinct
        // threads; on one thread the ticket order IS the record order,
        // so the merged trace must read back exactly as recorded.
        let rec = TraceRecorder::new();
        let handle = rec.clone();
        let ops = [
            Op::gemm(OpKind::QkvProj, 1, 8, 24),
            Op::non_gemm(NonGemmKind::Softmax, 64),
            Op::gemm(OpKind::AttnAv, 1, 9, 8),
        ];
        rec.record(ops[0]);
        handle.record(ops[1]);
        rec.record(ops[2]);
        assert_eq!(rec.snapshot().ops(), &ops);
        assert_eq!(handle.take().ops(), &ops);
        assert!(rec.snapshot().is_empty());
        // Two live recorders on one thread keep separate shards.
        let other = TraceRecorder::new();
        other.record(ops[0]);
        rec.record(ops[1]);
        assert_eq!(other.take().ops(), &ops[..1]);
        assert_eq!(rec.take().ops(), &ops[1..2]);
    }

    #[test]
    fn recorder_is_shared_across_clones_and_threads() {
        let rec = TraceRecorder::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        rec.record(Op::gemm(OpKind::Other, 1, 1, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.snapshot().len(), 40);
        assert_eq!(rec.take().len(), 40);
        assert!(rec.snapshot().is_empty());
    }
}
