//! Transformer workload models for the Lightening-Transformer evaluation.
//!
//! The accelerator simulators in `lt-arch` and `lt-baselines` consume
//! *GEMM traces*: lists of matrix-multiplication operations with shapes,
//! repetition counts, and operand dynamics (weight-static vs. dynamic).
//! This crate generates those traces for the paper's benchmarks — the
//! DeiT vision Transformers on 224x224 ImageNet shapes and BERT on
//! configurable sequence lengths — plus the sparse-attention and
//! autoregressive-LLM extensions of the paper's Section VI.
//!
//! # Example
//!
//! ```
//! use lt_workloads::{TransformerConfig, Module};
//! let deit_t = TransformerConfig::deit_tiny();
//! let trace = deit_t.gemm_trace();
//! let mha_macs: u64 = trace.iter()
//!     .filter(|op| op.module() == Module::Mha)
//!     .map(|op| op.total_macs())
//!     .sum();
//! assert!(mha_macs > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gemm;
pub mod llm;
pub mod model;
pub mod nonlinear;
pub mod sparse;

pub use gemm::{GemmOp, Module, OpKind, OperandDynamics};
pub use llm::DecodeTrace;
pub use model::TransformerConfig;
pub use nonlinear::NonGemmProfile;
pub use sparse::WindowAttention;
