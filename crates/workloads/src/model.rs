//! Transformer model configurations (the paper's benchmarks, Section V-A).

use crate::gemm::GemmOp;
use crate::nonlinear::NonGemmProfile;

/// Whether the model embeds image patches (DeiT) or tokens (BERT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputKind {
    /// Vision Transformer: patch embedding is a GEMM over flattened patches.
    VisionPatches {
        /// Input image side length in pixels (e.g. 224).
        image_size: usize,
        /// Patch side length in pixels (e.g. 16).
        patch_size: usize,
    },
    /// Text Transformer: embedding is a table lookup (no GEMM).
    TextTokens,
}

/// An encoder-style Transformer configuration.
///
/// ```
/// use lt_workloads::TransformerConfig;
/// let m = TransformerConfig::deit_tiny();
/// assert_eq!(m.seq_len, 197);
/// assert_eq!(m.head_dim(), 64);
/// // DeiT-T is ~1.1 GMACs at 224x224.
/// let gmacs = m.total_macs() as f64 / 1e9;
/// assert!(gmacs > 0.9 && gmacs < 1.5, "gmacs = {gmacs}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Human-readable name (e.g. `DeiT-T-224`).
    pub name: String,
    /// Number of encoder blocks.
    pub layers: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Hidden dimension of the FFN.
    pub ffn_dim: usize,
    /// Sequence length (tokens, including CLS for vision models).
    pub seq_len: usize,
    /// Number of output classes of the task head.
    pub num_classes: usize,
    /// Input embedding kind.
    pub input: InputKind,
}

impl TransformerConfig {
    /// DeiT-Tiny at 224x224: 12 layers, dim 192, 3 heads, FFN 768.
    pub fn deit_tiny() -> Self {
        Self::vision("DeiT-T-224", 12, 192, 3, 768)
    }

    /// DeiT-Small at 224x224: 12 layers, dim 384, 6 heads, FFN 1536.
    pub fn deit_small() -> Self {
        Self::vision("DeiT-S-224", 12, 384, 6, 1536)
    }

    /// DeiT-Base at 224x224: 12 layers, dim 768, 12 heads, FFN 3072.
    pub fn deit_base() -> Self {
        Self::vision("DeiT-B-224", 12, 768, 12, 3072)
    }

    /// BERT-base with a configurable sequence length (the paper uses 128).
    pub fn bert_base(seq_len: usize) -> Self {
        Self::text(&format!("BERT-base-{seq_len}"), 12, 768, 12, 3072, seq_len)
    }

    /// BERT-large with a configurable sequence length (the paper uses 320).
    pub fn bert_large(seq_len: usize) -> Self {
        Self::text(
            &format!("BERT-large-{seq_len}"),
            24,
            1024,
            16,
            4096,
            seq_len,
        )
    }

    /// GPT-2-small geometry (124M class): 12 layers, dim 768, 12 heads —
    /// the decoder stand-in for the paper's LLM discussion (Section VI-B).
    pub fn gpt2_small(seq_len: usize) -> Self {
        Self::text(&format!("GPT2-small-{seq_len}"), 12, 768, 12, 3072, seq_len)
    }

    /// GPT-2-medium geometry (355M class): 24 layers, dim 1024, 16 heads.
    pub fn gpt2_medium(seq_len: usize) -> Self {
        Self::text(
            &format!("GPT2-medium-{seq_len}"),
            24,
            1024,
            16,
            4096,
            seq_len,
        )
    }

    /// All five benchmark models of the paper's Fig. 13.
    pub fn paper_benchmarks() -> Vec<TransformerConfig> {
        vec![
            Self::deit_tiny(),
            Self::deit_small(),
            Self::deit_base(),
            Self::bert_base(128),
            Self::bert_large(320),
        ]
    }

    fn vision(name: &str, layers: usize, dim: usize, heads: usize, ffn: usize) -> Self {
        let image_size = 224;
        let patch_size = 16;
        let patches = (image_size / patch_size) * (image_size / patch_size);
        TransformerConfig {
            name: name.to_string(),
            layers,
            dim,
            heads,
            ffn_dim: ffn,
            seq_len: patches + 1, // + CLS token
            num_classes: 1000,
            input: InputKind::VisionPatches {
                image_size,
                patch_size,
            },
        }
    }

    fn text(
        name: &str,
        layers: usize,
        dim: usize,
        heads: usize,
        ffn: usize,
        seq_len: usize,
    ) -> Self {
        assert!(seq_len > 0, "sequence length must be positive");
        TransformerConfig {
            name: name.to_string(),
            layers,
            dim,
            heads,
            ffn_dim: ffn,
            seq_len,
            num_classes: 2, // SST-2-style classification head
            input: InputKind::TextTokens,
        }
    }

    /// Per-head dimension `d_k = dim / heads`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(
            self.dim % self.heads,
            0,
            "dim {} not divisible by heads {}",
            self.dim,
            self.heads
        );
        self.dim / self.heads
    }

    /// The GEMM trace of one single-batch inference (see [`GemmOp`]).
    pub fn gemm_trace(&self) -> Vec<GemmOp> {
        crate::gemm::trace(self)
    }

    /// The full analytical op trace of one inference in the shared IR:
    /// every GEMM (via [`GemmOp::op`]) followed by the non-GEMM digital
    /// profile. This is the *analytical* producer of the IR; `lt-nn`
    /// forward passes produce the *recorded* counterpart, and
    /// `tests/trace_crossval.rs` pins their agreement on GEMMs.
    pub fn trace(&self) -> lt_core::Trace {
        let mut t = lt_core::Trace::new();
        t.extend(self.gemm_trace().iter().map(GemmOp::op));
        t.extend(self.non_gemm_profile().ops());
        t
    }

    /// A structurally identical but tiny geometry: same layer count,
    /// head count, and input kind, with the widths shrunk (head dim 2,
    /// FFN expansion 2x, short sequences, at most 16 classes) so real
    /// weights can be instantiated and a forward pass executed — and
    /// recorded — inside a test. The analytical trace generator is
    /// fully parametric, so cross-validating recorded-vs-analytical at
    /// this geometry validates the generator for the benchmark's whole
    /// shape family.
    pub fn tiny_validation(&self) -> TransformerConfig {
        let dim = self.heads * 2;
        let (input, seq_len) = match self.input {
            InputKind::VisionPatches { .. } => {
                let (image_size, patch_size) = (32, 8);
                let patches = (image_size / patch_size) * (image_size / patch_size);
                (
                    InputKind::VisionPatches {
                        image_size,
                        patch_size,
                    },
                    patches + 1,
                )
            }
            InputKind::TextTokens => (InputKind::TextTokens, self.seq_len.min(16)),
        };
        TransformerConfig {
            name: format!("{}-tiny", self.name),
            layers: self.layers,
            dim,
            heads: self.heads,
            ffn_dim: dim * 2,
            seq_len,
            num_classes: self.num_classes.min(16),
            input,
        }
    }

    /// Total multiply-accumulate count of one inference.
    pub fn total_macs(&self) -> u64 {
        self.gemm_trace().iter().map(|op| op.total_macs()).sum()
    }

    /// Parameter count of the GEMM weights (attention + FFN + heads).
    pub fn param_count(&self) -> u64 {
        self.gemm_trace()
            .iter()
            .filter(|op| op.dynamics() == crate::gemm::OperandDynamics::WeightStatic)
            .map(|op| op.weight_params())
            .sum()
    }

    /// The non-GEMM (digital) operation profile of one inference.
    pub fn non_gemm_profile(&self) -> NonGemmProfile {
        NonGemmProfile::for_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_family_shapes() {
        let t = TransformerConfig::deit_tiny();
        assert_eq!((t.layers, t.dim, t.heads, t.ffn_dim), (12, 192, 3, 768));
        assert_eq!(t.seq_len, 197);
        let s = TransformerConfig::deit_small();
        assert_eq!(s.dim, 384);
        let b = TransformerConfig::deit_base();
        assert_eq!(b.dim, 768);
        assert_eq!(b.head_dim(), 64);
    }

    #[test]
    fn bert_profiles() {
        let b = TransformerConfig::bert_base(128);
        assert_eq!(b.seq_len, 128);
        assert_eq!(b.head_dim(), 64);
        let l = TransformerConfig::bert_large(320);
        assert_eq!((l.layers, l.dim, l.heads), (24, 1024, 16));
        assert_eq!(l.head_dim(), 64);
    }

    #[test]
    fn mac_counts_are_plausible() {
        // Published MAC counts (~FLOPs/2): DeiT-T ~1.1 G, DeiT-S ~4.3 G,
        // DeiT-B ~16.9 G at 224x224.
        let gmacs = |m: &TransformerConfig| m.total_macs() as f64 / 1e9;
        let t = gmacs(&TransformerConfig::deit_tiny());
        let s = gmacs(&TransformerConfig::deit_small());
        let b = gmacs(&TransformerConfig::deit_base());
        assert!((0.9..1.5).contains(&t), "DeiT-T {t} GMACs");
        assert!((3.8..5.0).contains(&s), "DeiT-S {s} GMACs");
        assert!((15.0..19.0).contains(&b), "DeiT-B {b} GMACs");
        assert!(s > 3.0 * t && b > 3.0 * s, "family scales ~4x per step");
    }

    #[test]
    fn param_counts_are_plausible() {
        // DeiT-T ~5-6 M, DeiT-B ~86 M (GEMM weights only, no embeddings).
        let t = TransformerConfig::deit_tiny().param_count() as f64 / 1e6;
        let b = TransformerConfig::deit_base().param_count() as f64 / 1e6;
        assert!((4.0..7.0).contains(&t), "DeiT-T params {t} M");
        assert!((80.0..90.0).contains(&b), "DeiT-B params {b} M");
    }

    #[test]
    fn bert_macs_scale_with_sequence() {
        let short = TransformerConfig::bert_base(128).total_macs();
        let long = TransformerConfig::bert_base(320).total_macs();
        assert!(long > 2 * short);
    }

    #[test]
    fn gpt_presets_have_decoder_geometries() {
        let s = TransformerConfig::gpt2_small(1);
        assert_eq!((s.layers, s.dim, s.heads), (12, 768, 12));
        assert_eq!(s.head_dim(), 64);
        let m = TransformerConfig::gpt2_medium(1);
        assert_eq!((m.layers, m.dim, m.heads), (24, 1024, 16));
        // Parameter counts in the published ballparks (GEMM weights only).
        let sp = s.param_count() as f64 / 1e6;
        let mp = m.param_count() as f64 / 1e6;
        assert!((70.0..110.0).contains(&sp), "GPT2-small {sp} M");
        assert!((250.0..350.0).contains(&mp), "GPT2-medium {mp} M");
    }

    #[test]
    fn ir_trace_carries_gemms_and_digital_profile() {
        let m = TransformerConfig::deit_tiny();
        let t = m.trace();
        assert_eq!(t.total_macs(), m.total_macs());
        assert_eq!(t.len(), m.gemm_trace().len() + 4);
        let digital: u64 = t
            .ops()
            .iter()
            .filter_map(|op| match *op {
                lt_core::Op::NonGemm { elems, .. } => Some(elems),
                _ => None,
            })
            .sum();
        assert_eq!(digital, m.non_gemm_profile().total_elems());
    }

    #[test]
    fn tiny_validation_keeps_structure_and_shrinks_widths() {
        for m in TransformerConfig::paper_benchmarks() {
            let t = m.tiny_validation();
            assert_eq!(t.layers, m.layers, "{}", m.name);
            assert_eq!(t.heads, m.heads, "{}", m.name);
            assert_eq!(t.head_dim(), 2, "{}", m.name);
            assert!(t.seq_len <= 17, "{}", m.name);
            assert!(t.total_macs() < 100_000_000, "{} stays test-sized", m.name);
            // Same op-kind multiset as the full model.
            let kinds = |c: &TransformerConfig| -> Vec<crate::gemm::OpKind> {
                c.gemm_trace().iter().map(|o| o.kind).collect()
            };
            assert_eq!(kinds(&t), kinds(&m), "{}", m.name);
        }
    }

    #[test]
    fn paper_benchmark_list_is_complete() {
        let names: Vec<String> = TransformerConfig::paper_benchmarks()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "DeiT-T-224",
                "DeiT-S-224",
                "DeiT-B-224",
                "BERT-base-128",
                "BERT-large-320"
            ]
        );
    }
}
