//! Autoregressive LLM decode workloads (paper Section VI-B).
//!
//! Token-by-token generation turns the attention GEMMs into small
//! matrix-vector products against the KV cache, collapsing arithmetic
//! intensity and making decoding memory-bound — the exact challenge the
//! paper discusses for photonic acceleration of LLMs. This module builds
//! per-token decode traces and quantifies intensity, KV-cache footprint,
//! and the batching remedy.

use crate::gemm::{GemmOp, OpKind};
use crate::model::TransformerConfig;

/// A single-token decode step against a KV cache of `context_len` tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeTrace {
    model: TransformerConfig,
    context_len: usize,
    batch: usize,
}

impl DecodeTrace {
    /// Creates a decode-step trace.
    ///
    /// # Panics
    ///
    /// Panics if `context_len == 0` or `batch == 0`.
    pub fn new(model: TransformerConfig, context_len: usize, batch: usize) -> Self {
        assert!(context_len > 0, "context length must be positive");
        assert!(batch > 0, "batch must be positive");
        DecodeTrace {
            model,
            context_len,
            batch,
        }
    }

    /// The model being decoded.
    pub fn model(&self) -> &TransformerConfig {
        &self.model
    }

    /// Current context (KV cache) length in tokens.
    pub fn context_len(&self) -> usize {
        self.context_len
    }

    /// GEMM trace of generating one token for the whole batch.
    pub fn gemm_trace(&self) -> Vec<GemmOp> {
        let d = self.model.dim;
        let h = self.model.heads;
        let dh = self.model.head_dim();
        let f = self.model.ffn_dim;
        let layers = self.model.layers;
        let ctx = self.context_len;
        let b = self.batch;
        vec![
            // Q/K/V projections for the single new token (batched rows).
            GemmOp::new(OpKind::QkvProj, b, d, d, 3 * layers),
            // q . K^T against the cache, per head: [b, dh] x [dh, ctx].
            GemmOp::new(OpKind::AttnQk, b, dh, ctx, h * layers),
            // a . V: [b, ctx] x [ctx, dh].
            GemmOp::new(OpKind::AttnAv, b, ctx, dh, h * layers),
            GemmOp::new(OpKind::OutProj, b, d, d, layers),
            GemmOp::new(OpKind::Ffn1, b, d, f, layers),
            GemmOp::new(OpKind::Ffn2, b, f, d, layers),
        ]
    }

    /// The decode-step GEMMs in the shared trace IR, so the same
    /// `lt_arch::Simulator::run_trace` entry point that replays recorded
    /// execution can replay the analytical decode step. The executable
    /// decode path (`lt_nn::decode`) records exactly these shapes at
    /// batch 1 — pinned by `tests/trace_crossval.rs`.
    pub fn op_trace(&self) -> lt_core::Trace {
        lt_core::Trace::from_ops(self.gemm_trace().iter().map(GemmOp::op).collect())
    }

    /// GEMM trace of one batched speculative *verify* pass: the last
    /// committed token plus `k` draft proposals run through the target
    /// in a single chunked pass, every GEMM row-stacked `k + 1` high
    /// and the attention context grown by the `k` extra speculated
    /// positions. With `context_len` counting the attended tokens at
    /// the first verified position (as in [`DecodeTrace::gemm_trace`]),
    /// `spec_gemm_trace(0)` *is* the plain decode step.
    ///
    /// This is the analytic twin of `lt_nn::DecoderLm::verify_step`
    /// (pinned by `tests/trace_crossval.rs`) and the whole bandwidth
    /// argument for speculation: the weights stream over HBM once per
    /// `k + 1` candidate positions instead of once per token.
    pub fn spec_gemm_trace(&self, k: usize) -> Vec<GemmOp> {
        let d = self.model.dim;
        let h = self.model.heads;
        let dh = self.model.head_dim();
        let f = self.model.ffn_dim;
        let layers = self.model.layers;
        let rows = self.batch * (k + 1);
        let ctx = self.context_len + k;
        vec![
            GemmOp::new(OpKind::QkvProj, rows, d, d, 3 * layers),
            GemmOp::new(OpKind::AttnQk, rows, dh, ctx, h * layers),
            GemmOp::new(OpKind::AttnAv, rows, ctx, dh, h * layers),
            GemmOp::new(OpKind::OutProj, rows, d, d, layers),
            GemmOp::new(OpKind::Ffn1, rows, d, f, layers),
            GemmOp::new(OpKind::Ffn2, rows, f, d, layers),
        ]
    }

    /// [`DecodeTrace::spec_gemm_trace`] in the shared trace IR, for
    /// `lt_arch::Simulator::run_trace` replay.
    pub fn spec_trace(&self, k: usize) -> lt_core::Trace {
        lt_core::Trace::from_ops(self.spec_gemm_trace(k).iter().map(GemmOp::op).collect())
    }

    /// MACs for one generated token.
    pub fn macs_per_token(&self) -> u64 {
        self.gemm_trace().iter().map(|op| op.total_macs()).sum()
    }

    /// KV-cache footprint in bytes at `bits` precision (keys + values, all
    /// layers, all heads, whole batch).
    pub fn kv_cache_bytes(&self, bits: u32) -> u64 {
        let per_token = 2 * self.model.layers as u64 * self.model.dim as u64;
        per_token * self.context_len as u64 * self.batch as u64 * bits as u64 / 8
    }

    /// Arithmetic intensity in MACs per byte touched (weights + KV cache
    /// read once per token at `bits` precision). Low intensity (< compute
    /// to bandwidth ratio) means the decode step is memory-bound.
    pub fn arithmetic_intensity(&self, bits: u32) -> f64 {
        let bytes_weights = self.model.param_count() * bits as u64 / 8;
        let bytes_kv = self.kv_cache_bytes(bits);
        self.macs_per_token() as f64 / (bytes_weights + bytes_kv) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt_like() -> TransformerConfig {
        // A small GPT-style decoder reusing the BERT-base geometry.
        TransformerConfig::gpt2_small(1)
    }

    #[test]
    fn decode_trace_shapes() {
        let t = DecodeTrace::new(gpt_like(), 512, 1);
        let ops = t.gemm_trace();
        let qk = ops.iter().find(|o| o.kind == OpKind::AttnQk).unwrap();
        assert_eq!((qk.m, qk.k, qk.n), (1, 64, 512));
        let av = ops.iter().find(|o| o.kind == OpKind::AttnAv).unwrap();
        assert_eq!((av.m, av.k, av.n), (1, 512, 64));
    }

    #[test]
    fn decode_is_memory_bound_at_batch_1() {
        let t = DecodeTrace::new(gpt_like(), 512, 1);
        // ~1 MAC/byte at batch 1: decisively memory-bound against any
        // accelerator with > 10 MACs/byte of compute-to-bandwidth ratio.
        let ai = t.arithmetic_intensity(8);
        assert!(ai < 4.0, "batch-1 decode intensity {ai}");
    }

    #[test]
    fn batching_raises_intensity() {
        let b1 = DecodeTrace::new(gpt_like(), 512, 1).arithmetic_intensity(8);
        let b16 = DecodeTrace::new(gpt_like(), 512, 16).arithmetic_intensity(8);
        assert!(
            b16 > 5.0 * b1,
            "batching must amortize weight reads: {b1} -> {b16}"
        );
    }

    #[test]
    fn op_trace_mirrors_the_gemm_trace() {
        let t = DecodeTrace::new(gpt_like(), 512, 4);
        let ir = t.op_trace();
        assert_eq!(ir.len(), t.gemm_trace().len());
        assert_eq!(
            ir.total_macs(),
            4 * DecodeTrace::new(gpt_like(), 512, 1).macs_per_token()
        );
    }

    #[test]
    fn spec_trace_at_k0_is_the_plain_decode_step() {
        let t = DecodeTrace::new(gpt_like(), 512, 1);
        assert_eq!(t.spec_gemm_trace(0), t.gemm_trace());
        assert_eq!(t.spec_trace(0), t.op_trace());
    }

    #[test]
    fn spec_trace_stacks_rows_and_grows_the_context() {
        let t = DecodeTrace::new(gpt_like(), 512, 1);
        let ops = t.spec_gemm_trace(4);
        let qk = ops.iter().find(|o| o.kind == OpKind::AttnQk).unwrap();
        assert_eq!((qk.m, qk.k, qk.n), (5, 64, 516));
        let av = ops.iter().find(|o| o.kind == OpKind::AttnAv).unwrap();
        assert_eq!((av.m, av.k, av.n), (5, 516, 64));
        let proj = ops.iter().find(|o| o.kind == OpKind::QkvProj).unwrap();
        assert_eq!(proj.m, 5, "projections row-stack all k+1 positions");
        // The speculation economics: 5 positions of projection/FFN MACs
        // against ONE weight stream (same k x n operands as a step).
        let step = DecodeTrace::new(gpt_like(), 512, 1).gemm_trace();
        let step_proj = step.iter().find(|o| o.kind == OpKind::QkvProj).unwrap();
        assert_eq!(proj.total_macs(), 5 * step_proj.total_macs());
        assert_eq!((proj.k, proj.n), (step_proj.k, step_proj.n));
    }

    #[test]
    fn kv_cache_grows_linearly() {
        let a = DecodeTrace::new(gpt_like(), 256, 1).kv_cache_bytes(8);
        let b = DecodeTrace::new(gpt_like(), 512, 1).kv_cache_bytes(8);
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn recompute_tradeoff_is_visible() {
        // Recalculating K/V (paper's suggestion, ref [61]) trades MACs for
        // memory: the recompute MACs exceed the cached-read bytes saved.
        let t = DecodeTrace::new(gpt_like(), 512, 1);
        let cache_bytes = t.kv_cache_bytes(8);
        let recompute_macs = 2u64 // K and V projections
            * t.model().layers as u64
            * (t.context_len() as u64)
            * (t.model().dim as u64)
            * (t.model().dim as u64);
        assert!(
            recompute_macs > cache_bytes,
            "optics buys compute, not bytes"
        );
    }
}
