//! Structured sparse attention support (paper Section VI-A, Fig. 16).
//!
//! Window-based local attention restricts each token to attend to a window
//! of neighbours. The paper shows how to *blockify* the Q/K matrices so the
//! sparse computation becomes groups of small dense matrix products that
//! DPTC accelerates natively; this module performs that reformulation and
//! reports the resulting dense GEMM trace and compute savings.

use crate::gemm::{GemmOp, OpKind};

/// A block-wise window local-attention pattern.
///
/// ```
/// use lt_workloads::WindowAttention;
/// let w = WindowAttention::new(192, 3, 16, 64);
/// let ops = w.blockified_qk();
/// // Each of ceil(192/16) = 12 Q blocks multiplies w = 3 K blocks.
/// assert_eq!(ops.count, 36);
/// assert!(w.density() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowAttention {
    /// Number of tokens `n`.
    pub tokens: usize,
    /// Window size `w` in blocks: each Q block attends to `w` K blocks.
    pub window_blocks: usize,
    /// Block size `b` (tokens per block).
    pub block_size: usize,
    /// Per-head dimension.
    pub head_dim: usize,
}

impl WindowAttention {
    /// Creates a pattern.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the window exceeds the number of
    /// blocks.
    pub fn new(tokens: usize, window_blocks: usize, block_size: usize, head_dim: usize) -> Self {
        assert!(
            tokens > 0 && window_blocks > 0 && block_size > 0 && head_dim > 0,
            "window-attention parameters must be positive"
        );
        let num_blocks = tokens.div_ceil(block_size);
        assert!(
            window_blocks <= num_blocks,
            "window of {window_blocks} blocks exceeds the {num_blocks} available"
        );
        WindowAttention {
            tokens,
            window_blocks,
            block_size,
            head_dim,
        }
    }

    /// Number of token blocks `ceil(n / b)`.
    pub fn num_blocks(&self) -> usize {
        self.tokens.div_ceil(self.block_size)
    }

    /// The blockified `Q K^T`: each chunked Q (shape `[b, dh]`) multiplies
    /// its `w` neighbouring chunked K matrices — dense `[b, dh] x [dh, b]`
    /// products.
    pub fn blockified_qk(&self) -> GemmOp {
        GemmOp::new(
            OpKind::AttnQk,
            self.block_size,
            self.head_dim,
            self.block_size,
            self.num_blocks() * self.window_blocks,
        )
    }

    /// The blockified `A V`: after row-wise compression of the sparse
    /// attention map, each Q block's scores (shape `[b, w*b]`) multiply the
    /// corresponding rows of V (`[w*b, dh]`).
    pub fn blockified_av(&self) -> GemmOp {
        GemmOp::new(
            OpKind::AttnAv,
            self.block_size,
            self.window_blocks * self.block_size,
            self.head_dim,
            self.num_blocks(),
        )
    }

    /// Fraction of the dense `n x n` attention map actually computed.
    pub fn density(&self) -> f64 {
        let computed = (self.num_blocks() * self.window_blocks) as f64
            * (self.block_size * self.block_size) as f64;
        let full = (self.tokens * self.tokens) as f64;
        (computed / full).min(1.0)
    }

    /// MAC savings versus dense attention (`QK^T` + `AV`).
    pub fn mac_saving(&self) -> f64 {
        let dense_qk = (self.tokens * self.head_dim * self.tokens) as f64;
        let dense_av = (self.tokens * self.tokens * self.head_dim) as f64;
        let sparse = (self.blockified_qk().total_macs() + self.blockified_av().total_macs()) as f64;
        (dense_qk + dense_av) / sparse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockification_preserves_shapes() {
        let w = WindowAttention::new(256, 3, 32, 64);
        let qk = w.blockified_qk();
        assert_eq!((qk.m, qk.k, qk.n), (32, 64, 32));
        assert_eq!(qk.count, 8 * 3);
        let av = w.blockified_av();
        assert_eq!((av.m, av.k, av.n), (32, 96, 64));
        assert_eq!(av.count, 8);
    }

    #[test]
    fn density_and_saving_are_consistent() {
        let w = WindowAttention::new(256, 2, 32, 64);
        let density = w.density();
        assert!((density - 2.0 * 32.0 / 256.0).abs() < 1e-12);
        // MAC saving is the inverse of density (QK and AV shrink equally).
        assert!((w.mac_saving() - 1.0 / density).abs() < 1e-9);
    }

    #[test]
    fn full_window_degenerates_to_dense() {
        let w = WindowAttention::new(128, 4, 32, 64);
        assert!((w.density() - 1.0).abs() < 1e-12);
        assert!((w.mac_saving() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vector_matrix_special_case() {
        // Setting block size 1 yields per-token vector-matrix products,
        // matching the paper's heterogeneous-core (Nh = 1) discussion.
        let w = WindowAttention::new(64, 5, 1, 32);
        let qk = w.blockified_qk();
        assert_eq!(qk.m, 1);
        assert_eq!(qk.count, 64 * 5);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_window_rejected() {
        WindowAttention::new(64, 10, 32, 64);
    }
}
