//! GEMM operations and trace generation.
//!
//! The op vocabulary ([`OpKind`], [`OperandDynamics`], [`Module`]) lives
//! in `lt_core::trace` — the shared IR that recorded execution and these
//! analytical traces both speak — and is re-exported here at its
//! historical paths. [`GemmOp`] is the analytical trace element; its
//! [`GemmOp::op`] conversion turns it into an IR [`lt_core::Op`] so a
//! whole analytical trace can be replayed by the same simulator entry
//! point as a recorded one.

use crate::model::{InputKind, TransformerConfig};
use lt_core::Op;

pub use lt_core::trace::{Module, OpKind, OperandDynamics};

/// One GEMM of shape `[m, k] x [k, n]`, repeated `count` times per
/// inference (e.g. once per head, or once per layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmOp {
    /// Operation role.
    pub kind: OpKind,
    /// Rows of the left operand.
    pub m: usize,
    /// Shared (inner) dimension.
    pub k: usize,
    /// Columns of the right operand.
    pub n: usize,
    /// Number of times this GEMM executes per inference.
    pub count: usize,
}

impl GemmOp {
    /// Creates an op.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the count is zero.
    pub fn new(kind: OpKind, m: usize, k: usize, n: usize, count: usize) -> Self {
        assert!(
            m > 0 && k > 0 && n > 0 && count > 0,
            "GEMM dimensions and count must be positive"
        );
        GemmOp {
            kind,
            m,
            k,
            n,
            count,
        }
    }

    /// MACs of a single execution.
    pub fn macs(&self) -> u64 {
        (self.m as u64) * (self.k as u64) * (self.n as u64)
    }

    /// MACs of all `count` executions.
    pub fn total_macs(&self) -> u64 {
        self.macs() * self.count as u64
    }

    /// Parameters if the right operand is a weight matrix (`k x n` each).
    pub fn weight_params(&self) -> u64 {
        (self.k as u64) * (self.n as u64) * self.count as u64
    }

    /// Whether both operands are runtime activations.
    pub fn dynamics(&self) -> OperandDynamics {
        self.kind.dynamics()
    }

    /// Module attribution per the paper's Table V.
    pub fn module(&self) -> Module {
        self.kind.module()
    }

    /// Converts to the shared trace IR (`count` becomes `instances`).
    pub fn op(&self) -> Op {
        Op::gemm_n(self.kind, self.m, self.k, self.n, self.count)
    }
}

/// Generates the per-inference GEMM trace of a Transformer (batch size 1,
/// as in the paper's simulator).
pub fn trace(model: &TransformerConfig) -> Vec<GemmOp> {
    let l = model.seq_len;
    let d = model.dim;
    let h = model.heads;
    let dh = model.head_dim();
    let f = model.ffn_dim;
    let mut ops = Vec::new();

    // Input embedding.
    if let InputKind::VisionPatches { patch_size, .. } = model.input {
        let patch_vec = 3 * patch_size * patch_size;
        ops.push(GemmOp::new(OpKind::PatchEmbed, l - 1, patch_vec, d, 1));
    }

    // Encoder blocks.
    let per_layer = [
        // Q, K, V projections: three [L, D] x [D, D] GEMMs.
        GemmOp::new(OpKind::QkvProj, l, d, d, 3),
        // Q K^T per head: [L, dh] x [dh, L].
        GemmOp::new(OpKind::AttnQk, l, dh, l, h),
        // A V per head: [L, L] x [L, dh].
        GemmOp::new(OpKind::AttnAv, l, l, dh, h),
        // Output projection.
        GemmOp::new(OpKind::OutProj, l, d, d, 1),
        // FFN.
        GemmOp::new(OpKind::Ffn1, l, d, f, 1),
        GemmOp::new(OpKind::Ffn2, l, f, d, 1),
    ];
    for op in per_layer {
        ops.push(GemmOp {
            count: op.count * model.layers,
            ..op
        });
    }

    // Task head on the CLS token.
    ops.push(GemmOp::new(OpKind::Classifier, 1, d, model.num_classes, 1));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_covers_all_roles() {
        let ops = trace(&TransformerConfig::deit_tiny());
        let kinds: Vec<OpKind> = ops.iter().map(|o| o.kind).collect();
        for k in [
            OpKind::PatchEmbed,
            OpKind::QkvProj,
            OpKind::AttnQk,
            OpKind::AttnAv,
            OpKind::OutProj,
            OpKind::Ffn1,
            OpKind::Ffn2,
            OpKind::Classifier,
        ] {
            assert!(kinds.contains(&k), "missing {k:?}");
        }
    }

    #[test]
    fn bert_has_no_patch_embed() {
        let ops = trace(&TransformerConfig::bert_base(128));
        assert!(ops.iter().all(|o| o.kind != OpKind::PatchEmbed));
    }

    #[test]
    fn attention_shapes_are_per_head() {
        let m = TransformerConfig::deit_tiny();
        let ops = trace(&m);
        let qk = ops.iter().find(|o| o.kind == OpKind::AttnQk).unwrap();
        assert_eq!((qk.m, qk.k, qk.n), (197, 64, 197));
        assert_eq!(qk.count, 3 * 12, "heads x layers");
        let av = ops.iter().find(|o| o.kind == OpKind::AttnAv).unwrap();
        assert_eq!((av.m, av.k, av.n), (197, 197, 64));
    }

    #[test]
    fn dynamics_classification() {
        let ops = trace(&TransformerConfig::deit_tiny());
        for op in &ops {
            match op.kind {
                OpKind::AttnQk | OpKind::AttnAv => {
                    assert_eq!(op.dynamics(), OperandDynamics::BothDynamic);
                    assert_eq!(op.module(), Module::Mha);
                }
                OpKind::Ffn1 | OpKind::Ffn2 => {
                    assert_eq!(op.dynamics(), OperandDynamics::WeightStatic);
                    assert_eq!(op.module(), Module::Ffn);
                }
                _ => assert_eq!(op.module(), Module::Other),
            }
        }
    }

    #[test]
    fn ffn_dominates_macs_in_deit() {
        // In DeiT the FFN is the largest MAC consumer (the paper's Table V
        // shows FFN energy well above MHA energy).
        let ops = trace(&TransformerConfig::deit_tiny());
        let macs = |m: Module| -> u64 {
            ops.iter()
                .filter(|o| o.module() == m)
                .map(|o| o.total_macs())
                .sum()
        };
        assert!(macs(Module::Ffn) > macs(Module::Mha));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_rejected() {
        GemmOp::new(OpKind::Ffn1, 0, 1, 1, 1);
    }

    #[test]
    fn ir_conversion_preserves_shape_counts_and_classification() {
        let op = GemmOp::new(OpKind::AttnQk, 197, 64, 197, 36);
        let ir = op.op();
        assert_eq!(ir, Op::gemm_n(OpKind::AttnQk, 197, 64, 197, 36));
        assert_eq!(ir.total_macs(), op.total_macs());
        assert_eq!(ir.dynamics(), Some(op.dynamics()));
        assert_eq!(ir.module(), op.module());
    }
}
