//! Non-GEMM (digital) operation accounting.
//!
//! The paper assumes all non-GEMM operations — softmax, LayerNorm, GELU,
//! residual additions, and requantization — run on digital processing
//! units (Section IV-A). Their energy is modeled per element in `lt-arch`;
//! this module counts the elements.

use crate::model::TransformerConfig;
use lt_core::{NonGemmKind, Op};

/// Element counts of the digital operations in one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NonGemmProfile {
    /// Softmax elements (attention scores): `layers * heads * L * L`.
    pub softmax_elems: u64,
    /// LayerNorm elements: two norms per block over `L * D`.
    pub layernorm_elems: u64,
    /// GELU elements: `layers * L * ffn_dim`.
    pub gelu_elems: u64,
    /// Residual-addition elements: two shortcuts per block over `L * D`.
    pub residual_elems: u64,
}

impl NonGemmProfile {
    /// Computes the profile for a model.
    pub fn for_model(model: &TransformerConfig) -> Self {
        let l = model.seq_len as u64;
        let d = model.dim as u64;
        let h = model.heads as u64;
        let f = model.ffn_dim as u64;
        let layers = model.layers as u64;
        NonGemmProfile {
            softmax_elems: layers * h * l * l,
            layernorm_elems: layers * 2 * l * d,
            gelu_elems: layers * l * f,
            residual_elems: layers * 2 * l * d,
        }
    }

    /// Total digital elements processed.
    pub fn total_elems(&self) -> u64 {
        self.softmax_elems + self.layernorm_elems + self.gelu_elems + self.residual_elems
    }

    /// The profile as trace-IR ops (one per digital kind).
    pub fn ops(&self) -> Vec<Op> {
        vec![
            Op::non_gemm(NonGemmKind::Softmax, self.softmax_elems),
            Op::non_gemm(NonGemmKind::LayerNorm, self.layernorm_elems),
            Op::non_gemm(NonGemmKind::Gelu, self.gelu_elems),
            Op::non_gemm(NonGemmKind::Residual, self.residual_elems),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_tiny_profile() {
        let p = NonGemmProfile::for_model(&TransformerConfig::deit_tiny());
        assert_eq!(p.softmax_elems, 12 * 3 * 197 * 197);
        assert_eq!(p.layernorm_elems, 12 * 2 * 197 * 192);
        assert_eq!(p.gelu_elems, 12 * 197 * 768);
        assert_eq!(p.residual_elems, p.layernorm_elems);
        assert_eq!(
            p.total_elems(),
            p.softmax_elems + p.layernorm_elems + p.gelu_elems + p.residual_elems
        );
    }

    #[test]
    fn softmax_grows_quadratically_with_sequence() {
        let short = NonGemmProfile::for_model(&TransformerConfig::bert_base(128));
        let long = NonGemmProfile::for_model(&TransformerConfig::bert_base(256));
        assert_eq!(long.softmax_elems, short.softmax_elems * 4);
    }
}
