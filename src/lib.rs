//! # Lightening-Transformer (Rust reproduction)
//!
//! A from-scratch Rust implementation of *Lightening-Transformer: A
//! Dynamically-Operated Optically-Interconnected Photonic Transformer
//! Accelerator* (HPCA 2024, arXiv:2305.19533).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the foundation: the shared flat [`core::Matrix`] type,
//!   [`core::MatrixView`] slices, and the pluggable
//!   [`core::ComputeBackend`] trait every compute provider implements
//! * [`photonics`] — optical device substrate (devices, WDM, noise, link budgets)
//! * [`dptc`] — the paper's core contribution: the DDot dot-product engine and
//!   the DPTC dynamically-operated photonic tensor core
//! * [`arch`] — the accelerator architecture simulator (memory, dataflow,
//!   energy/latency/area/power)
//! * [`baselines`] — MZI-array and MRR-bank photonic baselines plus
//!   electronic platform models, each also available as a numeric
//!   [`core::ComputeBackend`]
//! * [`workloads`] — DeiT/BERT GEMM traces, sparse attention, LLM decode
//! * [`nn`] — pure-Rust NN stack for the accuracy/robustness experiments,
//!   including the batching inference server in [`nn::serve`] and the
//!   executable KV-cached autoregressive decode path ([`nn::decode`]
//!   plus the continuous-batching [`nn::serve::decode::DecodeServer`])
//! * [`runtime`] — the multi-threaded execution layer:
//!   [`runtime::ParallelBackend`] (row-block parallel GEMM over any
//!   backend), [`runtime::ThreadPool`], and [`runtime::BatchQueue`]
//!
//! # Quickstart
//!
//! ```
//! use lightening_transformer::core::Matrix64;
//! use lightening_transformer::dptc::{Dptc, DptcConfig, Fidelity};
//!
//! // A 4x4 crossbar with 4 wavelengths; fidelity is a value, not a method.
//! let core = Dptc::new(DptcConfig::new(4, 4, 4));
//! let a = Matrix64::from_fn(4, 4, |_, j| [0.5, -0.2, 0.1, 0.8][j]);
//! let b = Matrix64::from_fn(4, 4, |_, _| 0.3);
//! let exact = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
//! let noisy = core.matmul(a.view(), b.view(), &Fidelity::paper_noisy(42));
//! assert_eq!(exact.shape(), (4, 4));
//! assert!(noisy.max_abs_diff(&exact) < 0.5);
//! ```

pub use lt_arch as arch;
pub use lt_baselines as baselines;
pub use lt_core as core;
pub use lt_dptc as dptc;
pub use lt_nn as nn;
pub use lt_photonics as photonics;
pub use lt_runtime as runtime;
pub use lt_workloads as workloads;
