//! # Lightening-Transformer (Rust reproduction)
//!
//! A from-scratch Rust implementation of *Lightening-Transformer: A
//! Dynamically-Operated Optically-Interconnected Photonic Transformer
//! Accelerator* (HPCA 2024, arXiv:2305.19533).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`photonics`] — optical device substrate (devices, WDM, noise, link budgets)
//! * [`dptc`] — the paper's core contribution: the DDot dot-product engine and
//!   the DPTC dynamically-operated photonic tensor core
//! * [`arch`] — the accelerator architecture simulator (memory, dataflow,
//!   energy/latency/area/power)
//! * [`baselines`] — MZI-array and MRR-bank photonic baselines plus
//!   electronic platform models
//! * [`workloads`] — DeiT/BERT GEMM traces, sparse attention, LLM decode
//! * [`nn`] — pure-Rust NN stack for the accuracy/robustness experiments
//!
//! # Quickstart
//!
//! ```
//! use lightening_transformer::dptc::{Dptc, DptcConfig, NoiseModel};
//!
//! // A 4x4 crossbar with 4 wavelengths, paper-default noise.
//! let core = Dptc::new(DptcConfig::new(4, 4, 4));
//! let a = vec![vec![0.5, -0.2, 0.1, 0.8]; 4];
//! let b = vec![vec![0.3; 4]; 4];
//! let exact = core.matmul_ideal(&a, &b);
//! let noisy = core.matmul_noisy(&a, &b, &NoiseModel::paper_default(), 42);
//! assert_eq!(exact.len(), 4);
//! assert_eq!(noisy.len(), 4);
//! ```

pub use lt_arch as arch;
pub use lt_baselines as baselines;
pub use lt_dptc as dptc;
pub use lt_nn as nn;
pub use lt_photonics as photonics;
pub use lt_workloads as workloads;
